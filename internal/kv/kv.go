// Package kv defines the store interface shared by FloDB and the four
// baseline systems, plus the wire encoding of key-value mutations used in
// write-ahead-log records.
//
// Having one interface is what lets the benchmark harness run the paper's
// five systems (FloDB, LevelDB, HyperLevelDB, RocksDB, RocksDB/cLSM)
// through identical drivers, as the paper's evaluation does.
package kv

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"flodb/internal/keys"
)

// Pair is a key-value result returned by scans.
type Pair struct {
	Key   []byte
	Value []byte
}

// View is the read half of the store contract: point reads, materializing
// range reads, and streaming cursors over ONE consistent source of data.
// Two things implement it — a Store itself (the live view, where every
// read observes the freshest data) and the handle returned by
// Store.Snapshot (a read-only view pinned at a point in time, where every
// read repeats identically however many writes land after it).
//
// Writing read paths against View, not Store, is what lets gets, scans
// and iterators be implemented once and served from either source.
//
// Close releases the view's resources. On the live view it closes the
// store; on a snapshot it unpins the snapshot (the store stays open) and
// further reads return ErrSnapshotReleased.
//
// Every operation takes a context: cancellation or deadline expiry makes
// the call return promptly with an error satisfying
// errors.Is(err, context.Canceled) / context.DeadlineExceeded. Iterators
// returned by NewIterator capture the context and honor it on every
// subsequent positioning call.
type View interface {
	// Get returns the value of key in this view. found is false if the
	// key is absent or deleted.
	Get(ctx context.Context, key []byte) (value []byte, found bool, err error)
	// Scan returns all pairs with low <= key < high, in key order. The
	// returned view is a consistent snapshot (serializable; master scans
	// in FloDB are linearizable, §4.4).
	Scan(ctx context.Context, low, high []byte) ([]Pair, error)
	// NewIterator returns a streaming cursor over low <= key < high (nil
	// bounds are open). Unlike Scan it does not materialize the range:
	// memory use is O(1) in the range size. See Iterator for the
	// consistency contract.
	NewIterator(ctx context.Context, low, high []byte) (Iterator, error)
	// Close releases the view.
	Close() error
}

// Store is the user-facing key-value API from §2.1 of the paper — put,
// get, remove, and range reads with point-in-time (serializable)
// semantics — extended with the entry points a production store serving
// concurrent request threads needs: atomic multi-op write batches,
// named repeatable-read snapshots, online checkpoints, per-operation
// durability classes with a Sync barrier, and context-aware cancellation
// on every operation.
//
// The embedded View is the live read half: Get/Scan/NewIterator observe
// the freshest data, and Close closes the whole store.
//
// Durability: every mutation commits under a Durability class — the
// store's open-time default unless the call overrides it with a
// WriteOption (WithSync, WithDurability). Requesting a logged class
// (Buffered or Sync) on a store configured without a commit log fails
// with ErrNotSupported rather than silently downgrading.
type Store interface {
	View
	// Put inserts or overwrites key with value.
	Put(ctx context.Context, key, value []byte, opts ...WriteOption) error
	// Delete removes key (by writing a tombstone).
	Delete(ctx context.Context, key []byte, opts ...WriteOption) error
	// Apply commits every mutation in b atomically: after a crash either
	// all of b's operations are recovered or none are. The batch is
	// logged as one WAL record, amortizing framing — and, under
	// DurabilitySync, the whole batch costs one group-committed fsync.
	Apply(ctx context.Context, b *Batch, opts ...WriteOption) error
	// Sync is the durability barrier: it blocks until every mutation
	// acknowledged before the call is crash-durable, promoting the
	// acked-but-buffered window to durable in one group-committed disk
	// barrier. On a store without a commit log it returns nil — there is
	// no buffered window to promote (writes are DurabilityNone and only
	// flushes make data durable).
	Sync(ctx context.Context) error
	// Snapshot returns a read-only View pinned at the current state: a
	// repeatable-read handle whose Gets, Scans and iterators observe
	// exactly the data committed before the call, however long the handle
	// lives and however many writes land after it. The handle must be
	// Closed to release pinned resources; reads on a closed handle return
	// ErrSnapshotReleased.
	Snapshot(ctx context.Context) (View, error)
	// Checkpoint produces an openable on-disk copy of the store in dir
	// (which must not exist or be empty): immutable sstables are
	// hard-linked where possible, the manifest is rewritten, and the WAL
	// tail is copied, so the checkpoint reopens as a valid store holding
	// a prefix-consistent state. The source store stays online.
	Checkpoint(ctx context.Context, dir string) error
}

// --- Error taxonomy ----------------------------------------------------------

// ErrClosed is returned by operations on a closed store. Implementations
// wrap it, so test with errors.Is.
var ErrClosed = errors.New("kv: store closed")

// ErrSnapshotReleased is returned by reads through a snapshot View whose
// Close has run.
var ErrSnapshotReleased = errors.New("kv: snapshot released")

// ErrNotSupported is returned when a store cannot provide an operation in
// its current configuration (e.g. Checkpoint on a store without a disk
// component).
var ErrNotSupported = errors.New("kv: operation not supported")

// ErrUnavailable is returned when a remote store cannot be reached: the
// node is down, unreachable, or a quorum of replicas cannot be assembled.
// It distinguishes "node down" (retry elsewhere, queue a hint, mark the
// member unhealthy) from "bad request" (caller error, retrying is
// pointless). Implementations wrap it, so test with errors.Is.
var ErrUnavailable = errors.New("kv: node unavailable")

// Iterator is a streaming cursor over a key range, yielding live pairs in
// ascending key order. A fresh iterator is unpositioned; call First (or
// Seek, or Next, which implies First) to position it. Key and Value are
// valid only after a positioning call returned true and until the next
// positioning call. When iteration stops early, check Err; Close releases
// any pinned resources and must always be called.
//
// Consistency: every pair comes from a consistent snapshot no older than
// the iterator's creation. FloDB serves each internal refill chunk from a
// single Algorithm 3 snapshot (restarting transparently on in-place
// overwrite conflicts); the multi-versioned baselines pin one snapshot for
// the iterator's whole lifetime.
type Iterator interface {
	// First positions at the first pair of the range.
	First() bool
	// Seek positions at the first pair with key >= the given key (clamped
	// to the iterator's range).
	Seek(key []byte) bool
	// Next advances to the next pair; on an unpositioned iterator it is
	// equivalent to First.
	Next() bool
	// Key returns the current key. The slice is valid until the iterator
	// advances; callers that retain it must copy.
	Key() []byte
	// Value returns the current value, under the same aliasing rule as Key.
	Value() []byte
	// Err returns the first error the iterator encountered, if any.
	Err() error
	// Close releases the iterator's resources. It is idempotent.
	Close() error
}

// Stats are point-in-time counters exposed by stores for the harness.
type Stats struct {
	Puts, Gets, Deletes, Scans uint64
	// Batches counts Apply calls; BatchOps the mutations they carried.
	Batches, BatchOps uint64
	// Iterators counts NewIterator calls.
	Iterators uint64
	// Snapshots counts Snapshot calls; Checkpoints counts Checkpoint calls.
	Snapshots      uint64
	Checkpoints    uint64
	ScanRestarts   uint64
	FallbackScans  uint64
	MembufferHits  uint64 // updates completed in the Membuffer
	MemtableWrites uint64 // updates that fell through to the Memtable
	Flushes        uint64
	Compactions    uint64

	// Read-path caching (internal/cache; zero when the engine has no disk
	// component). The block cache holds parsed sstable blocks keyed by
	// (file, offset); the table cache holds open sstable readers (one fd
	// each). BloomChecks counts bloom-filter consultations on the disk
	// read path and BloomMisses the reads a filter proved absent —
	// MissRate = BloomMisses/BloomChecks is the fraction of disk probes
	// the filters short-circuited.
	BlockCacheHits      uint64
	BlockCacheMisses    uint64
	BlockCacheEvictions uint64
	BlockCacheBytes     int64
	TableCacheHits      uint64
	TableCacheMisses    uint64
	BloomChecks         uint64
	BloomMisses         uint64

	// The acked-vs-durable boundary, in commit-log order. AckedSeq is the
	// commit index of the last acknowledged logged record; DurableSeq is
	// the highest commit index known crash-durable (fsync-covered, or in
	// a generation whose contents reached sstables). Records in
	// (DurableSeq, AckedSeq] are the buffered window a crash can lose and
	// Sync closes; DurabilityNone writes are never logged and appear in
	// neither counter. Both are session-relative (reset at Open).
	AckedSeq   uint64
	DurableSeq uint64
	// WALSyncs counts fsyncs issued by the group-commit queue;
	// WALSyncRequests counts the durability requests they served. Their
	// ratio is the group-commit coalescing factor: requests/fsyncs > 1
	// means one disk barrier acknowledged many writers.
	WALSyncs        uint64
	WALSyncRequests uint64
	// SyncBarriers counts Store.Sync calls.
	SyncBarriers uint64

	// Adaptive memory-component sizing (§4.4; FloDB engines only, zero
	// elsewhere). MembufferFraction is the live Membuffer share of the
	// memory budget — the configured fraction when adaptation is off, a
	// shard-weighted mean on a sharded store. MembufferResizes counts
	// completed resize epochs. The Sensor* rates are the workload
	// sensor's last-window measurements in ops/s; SensorStallPct is
	// drain-stall time over the window as a percentage of wall time,
	// summed across stalled writers (it can exceed 100 under a
	// multi-threaded write storm).
	MembufferFraction float64
	MembufferResizes  uint64
	SensorPutRate     float64
	SensorGetRate     float64
	SensorScanRate    float64
	SensorStallPct    float64

	// Sharded-engine topology and commit pipeline (internal/shard; zero
	// elsewhere). ShardEpoch is the live topology epoch — it starts at 1
	// and bumps on every split or merge, which ShardSplits / ShardMerges
	// count. ShardQueueDepth is the number of writes enqueued on
	// committer pipelines but not yet committed: in a per-shard row it is
	// that shard's queue, in the aggregate the sum. ShardHotness is the
	// rebalance sensor's share of recent operations: a per-shard row
	// reports that shard's share of the last window's traffic (1/n is a
	// perfect spread), the aggregate reports the hottest shard's share —
	// the imbalance signal the splitter acts on.
	ShardEpoch      uint64
	ShardSplits     uint64
	ShardMerges     uint64
	ShardQueueDepth uint64
	ShardHotness    float64

	// Service-tier observability (flodbd; zero on in-process stores).
	// Populated by the remote client from the server's side of the
	// connection: open/lifetime connection counts, requests currently
	// executing, lifetime request and byte totals, and requests that
	// exceeded the server's slow-request threshold.
	ServerConnsOpen    uint64
	ServerConnsTotal   uint64
	ServerInFlight     uint64
	ServerRequests     uint64
	ServerBytesIn      uint64
	ServerBytesOut     uint64
	ServerSlowRequests uint64

	// Cluster coordination (internal/cluster; zero elsewhere).
	// QuorumWrites acked at the full write quorum W of live replica
	// responses; DegradedWrites acked below W because owners were down
	// (the missed replicas hold hints). ReadRepairs counts stale or
	// missing replica copies pushed forward by reads. HintsQueued /
	// HintsReplayed / HintsPending describe the hinted-handoff log;
	// NodesUp / NodesDown are the prober's current member view.
	ClusterQuorumWrites   uint64
	ClusterDegradedWrites uint64
	ClusterReadRepairs    uint64
	ClusterHintsQueued    uint64
	ClusterHintsReplayed  uint64
	ClusterHintsPending   uint64
	ClusterNodesUp        uint64
	ClusterNodesDown      uint64
}

// StatsProvider is implemented by stores that report Stats.
type StatsProvider interface {
	Stats() Stats
}

// --- WAL record encoding ----------------------------------------------------

// ErrBadRecord reports a structurally invalid mutation record.
var ErrBadRecord = errors.New("kv: bad record")

// EncodeRecord serializes one mutation: kind, key, value.
// Layout: kind(1) | klen(uvarint) | key | vlen(uvarint) | value.
func EncodeRecord(kind keys.Kind, key, value []byte) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+len(value))
	buf = append(buf, byte(kind))
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(value)))
	buf = append(buf, value...)
	return buf
}

// DecodeRecord parses a record produced by EncodeRecord. The returned
// slices alias rec.
func DecodeRecord(rec []byte) (kind keys.Kind, key, value []byte, err error) {
	if len(rec) < 1 {
		return 0, nil, nil, fmt.Errorf("%w: empty", ErrBadRecord)
	}
	kind = keys.Kind(rec[0])
	if kind != keys.KindSet && kind != keys.KindDelete {
		return 0, nil, nil, fmt.Errorf("%w: kind %d", ErrBadRecord, rec[0])
	}
	rest := rec[1:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return 0, nil, nil, fmt.Errorf("%w: key length", ErrBadRecord)
	}
	rest = rest[n:]
	key = rest[:klen]
	rest = rest[klen:]
	vlen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < vlen {
		return 0, nil, nil, fmt.Errorf("%w: value length", ErrBadRecord)
	}
	rest = rest[n:]
	if uint64(len(rest)) != vlen {
		return 0, nil, nil, fmt.Errorf("%w: trailing bytes", ErrBadRecord)
	}
	value = rest[:vlen]
	return kind, key, value, nil
}
