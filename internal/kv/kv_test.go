package kv

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"flodb/internal/keys"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []struct {
		kind       keys.Kind
		key, value []byte
	}{
		{keys.KindSet, []byte("k"), []byte("v")},
		{keys.KindSet, []byte{}, []byte{}},
		{keys.KindDelete, []byte("gone"), nil},
		{keys.KindSet, bytes.Repeat([]byte("K"), 1000), bytes.Repeat([]byte("V"), 5000)},
	}
	for _, tc := range cases {
		rec := EncodeRecord(tc.kind, tc.key, tc.value)
		kind, key, value, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("decode(%v): %v", tc.kind, err)
		}
		if kind != tc.kind || !bytes.Equal(key, tc.key) || !bytes.Equal(value, tc.value) {
			t.Fatalf("round trip mismatch: %v %q %q", kind, key, value)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{99},                                   // unknown kind
		{byte(keys.KindSet)},                   // missing lengths
		{byte(keys.KindSet), 0x05, 'a'},        // key shorter than declared
		{byte(keys.KindSet), 0x01, 'a', 0x09},  // value shorter than declared
		{byte(keys.KindSet), 0x00, 0x00, 0xff}, // trailing bytes
		{byte(keys.KindSet), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // huge varint
	}
	for i, rec := range bad {
		if _, _, _, err := DecodeRecord(rec); !errors.Is(err, ErrBadRecord) {
			t.Errorf("case %d: expected ErrBadRecord, got %v", i, err)
		}
	}
}

func TestRecordPropertyRoundTrip(t *testing.T) {
	err := quick.Check(func(key, value []byte, del bool) bool {
		kind := keys.KindSet
		if del {
			kind = keys.KindDelete
		}
		k2, key2, val2, err := DecodeRecord(EncodeRecord(kind, key, value))
		return err == nil && k2 == kind && bytes.Equal(key2, key) && bytes.Equal(val2, value)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
