package kv

import (
	"fmt"
)

// Durability classifies how durable a mutation is when its call returns.
//
// The store has an open-time default; every Put, Delete and Apply may
// override it per operation with a WriteOption. The classes trade crash
// safety against cost:
//
//	None      — the mutation skips the commit log entirely. A crash loses
//	            it unless its memtable already reached sstables. Cheapest:
//	            pure memory-component speed.
//	Buffered  — the mutation is staged into the commit log before the
//	            call returns, with no flush or fsync on the ack path: a
//	            crash may lose a suffix of recently acked writes — never
//	            a middle slice (replay is prefix-consistent in commit
//	            order). The store's Sync barrier, or any later Sync-class
//	            write, promotes everything staged so far to durable.
//	Sync      — the call returns only after a disk barrier covers the
//	            mutation's log record. Concurrent Sync-class committers
//	            share barriers through the WAL's group-commit queue, so N
//	            writers cost O(1) fsyncs, not O(N).
//
// The zero value, DurabilityDefault, defers to the store's configured
// default (itself Buffered unless configured otherwise, or None when the
// store runs without a commit log).
type Durability uint8

const (
	// DurabilityDefault defers to the store's open-time default.
	DurabilityDefault Durability = iota
	// DurabilityNone skips the commit log: fastest, lost on crash.
	DurabilityNone
	// DurabilityBuffered stages into the commit log without flush or
	// fsync: a crash may lose a recent suffix of acked writes, never a
	// middle slice.
	DurabilityBuffered
	// DurabilitySync group-commits an fsync before acknowledging.
	DurabilitySync
)

// String names the class.
func (d Durability) String() string {
	switch d {
	case DurabilityDefault:
		return "default"
	case DurabilityNone:
		return "none"
	case DurabilityBuffered:
		return "buffered"
	case DurabilitySync:
		return "sync"
	default:
		return fmt.Sprintf("durability(%d)", uint8(d))
	}
}

// Valid reports whether d is one of the defined classes.
func (d Durability) Valid() bool { return d <= DurabilitySync }

// ParseDurability maps the CLI/config spelling to a class.
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "default":
		return DurabilityDefault, nil
	case "none":
		return DurabilityNone, nil
	case "buffered":
		return DurabilityBuffered, nil
	case "sync":
		return DurabilitySync, nil
	default:
		return 0, fmt.Errorf("kv: unknown durability %q (want none|buffered|sync)", s)
	}
}

// WriteOptions is the resolved per-operation write configuration.
type WriteOptions struct {
	// Durability is the class this operation committed under.
	Durability Durability
}

// A WriteOption tunes one Put, Delete or Apply call. Options are applied
// in order over the store's defaults, so later options override earlier
// ones.
type WriteOption interface {
	// ApplyWrite folds the option into the resolved options.
	ApplyWrite(*WriteOptions)
}

// writeOptionFunc adapts a closure to WriteOption.
type writeOptionFunc func(*WriteOptions)

func (f writeOptionFunc) ApplyWrite(o *WriteOptions) { f(o) }

// WithDurability requests the given durability class for one operation.
// DurabilityDefault is a no-op (keeps the store default).
func WithDurability(d Durability) WriteOption {
	return writeOptionFunc(func(o *WriteOptions) {
		if d != DurabilityDefault {
			o.Durability = d
		}
	})
}

// WithSync makes one operation Sync-durable: the call returns only after a
// group-committed disk barrier covers it. Shorthand for
// WithDurability(DurabilitySync).
func WithSync() WriteOption { return WithDurability(DurabilitySync) }

// ResolveWriteOptions folds opts over a store's default durability. A
// DurabilityDefault default resolves to Buffered, matching the documented
// store contract. Nil options are ignored.
func ResolveWriteOptions(def Durability, opts ...WriteOption) WriteOptions {
	if def == DurabilityDefault {
		def = DurabilityBuffered
	}
	o := WriteOptions{Durability: def}
	for _, opt := range opts {
		if opt != nil {
			opt.ApplyWrite(&o)
		}
	}
	return o
}
