package baseline

import (
	"context"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/wal"
)

// RocksDB models Facebook's RocksDB (§2.2, §6): it improves on LevelDB by
// "(a) carefully reducing the size and number of critical sections on the
// global lock and (b) caching metadata locally", and adds "multithreaded
// disk-to-disk compaction which runs in parallel with memory-to-disk
// persistence". Each operation takes ONE short global critical section;
// compaction uses a worker pool.
//
// MemKind selects the skiplist or the hash-based memtable ("RocksDB
// hash-based memtable implementations" [7]) — the two sides of the
// size–latency trade-off in Figs 3 and 4.
type RocksDB struct {
	base
}

// NewRocksDB opens a RocksDB-style store.
func NewRocksDB(cfg Config) (*RocksDB, error) {
	if cfg.Storage.CompactionThreads == 0 {
		cfg.Storage.CompactionThreads = 3 // multithreaded compaction
	}
	db := &RocksDB{}
	if err := db.init(cfg); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *RocksDB) write(ctx context.Context, kind keys.Kind, key, value []byte, opts []kv.WriteOption) error {
	if db.closed.Load() {
		return ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := db.loadFlushErr(); err != nil {
		return err
	}
	d, err := db.resolveDurability(opts)
	if err != nil {
		return err
	}
	// Single short critical section: room check, seq, log, size trigger.
	// The snapshot barrier spans allocation through insert so a Snapshot
	// never pins a sequence still in flight.
	db.snapMu.RLock()
	db.mu.Lock()
	if err := db.waitRoomCtxLocked(ctx); err != nil {
		db.mu.Unlock()
		db.snapMu.RUnlock()
		return err
	}
	var w *wal.Writer
	var off int64
	if d != kv.DurabilityNone {
		if w, off, err = db.logRecord(db.mem, kind, key, value); err != nil {
			db.mu.Unlock()
			db.snapMu.RUnlock()
			return err
		}
	}
	h, seq := db.beginConcurrentInsertLocked()
	db.maybeScheduleFlushLocked()
	db.mu.Unlock()

	h.mem.Insert(key, seq, kind, value)
	db.snapMu.RUnlock()
	// Group commit outside every lock — the shape of RocksDB's write
	// group: one leader's fsync acknowledges the whole wave of
	// WriteOptions.sync committers.
	if d == kv.DurabilitySync {
		return db.commitSync(w, off)
	}
	return nil
}

// Put inserts with one short global critical section.
func (db *RocksDB) Put(ctx context.Context, key, value []byte, opts ...kv.WriteOption) error {
	db.stats.puts.Add(1)
	return db.write(ctx, keys.KindSet, key, value, opts)
}

// Delete writes a tombstone version.
func (db *RocksDB) Delete(ctx context.Context, key []byte, opts ...kv.WriteOption) error {
	db.stats.deletes.Add(1)
	return db.write(ctx, keys.KindDelete, key, nil, opts)
}

// Get takes one short critical section to capture the view ("caching
// metadata locally reduces synchronized accesses", §6), then reads without
// the lock — the concurrency that lets RocksDB scale reads in Fig 10.
func (db *RocksDB) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if db.closed.Load() {
		return nil, false, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	db.stats.gets.Add(1)
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	v, ok, err := db.getFrom(mem, imm, nil, snap, key)
	if err != nil || !ok {
		return nil, false, err
	}
	return keys.Clone(v), true, nil
}

// Scan produces a snapshot scan with one critical section.
func (db *RocksDB) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.scans.Add(1)
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	return db.scanFrom(ctx, mem, imm, snap, low, high)
}

// NewIterator streams a pinned snapshot after one short critical section.
func (db *RocksDB) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.iterators.Add(1)
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	return db.newSnapshotIter(ctx, mem, imm, nil, snap, low, high, nil)
}

// Snapshot pins a repeatable-read view after one short critical section —
// the shape of RocksDB's GetSnapshot — behind the snapshot barrier (no
// insert with seq <= the bound is still in flight).
func (db *RocksDB) Snapshot(ctx context.Context) (kv.View, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.snapMu.Lock()
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	db.snapMu.Unlock()
	return db.newSnapshot(mem, imm, snap), nil
}

// Apply commits the batch atomically with one critical section — the shape
// of RocksDB's WriteBatch, whose group commit this models.
func (db *RocksDB) Apply(ctx context.Context, b *kv.Batch, opts ...kv.WriteOption) error {
	return db.applyBatch(ctx, b, opts)
}

// Close flushes and shuts down.
func (db *RocksDB) Close() error { return db.closeCommon() }

var _ kv.Store = (*RocksDB)(nil)
