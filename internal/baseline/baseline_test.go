package baseline

import (
	"bytes"
	"context"

	"math/rand"
	"sync"
	"testing"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// bg is the context threaded through every store call in these tests.
var bg = context.Background()

// openers enumerates every baseline variant so the whole battery runs
// against each — the paper evaluates all of them under identical drivers.
var openers = []struct {
	name string
	open func(cfg Config) (kv.Store, error)
}{
	{"leveldb", func(cfg Config) (kv.Store, error) { return NewLevelDB(cfg) }},
	{"hyperleveldb", func(cfg Config) (kv.Store, error) { return NewHyperLevelDB(cfg) }},
	{"rocksdb", func(cfg Config) (kv.Store, error) { return NewRocksDB(cfg) }},
	{"rocksdb-hash", func(cfg Config) (kv.Store, error) {
		cfg.MemKind = MemHash
		return NewRocksDB(cfg)
	}},
	{"clsm", func(cfg Config) (kv.Store, error) { return NewCLSM(cfg) }},
}

func forEachStore(t *testing.T, memBytes int64, fn func(t *testing.T, s kv.Store)) {
	for _, o := range openers {
		t.Run(o.name, func(t *testing.T) {
			s, err := o.open(Config{Dir: t.TempDir(), MemBytes: memBytes})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			fn(t, s)
		})
	}
}

func spread(i uint64) []byte { return keys.EncodeUint64(i * 0x9e3779b97f4a7c15) }

func TestBasicOps(t *testing.T) {
	forEachStore(t, 1<<20, func(t *testing.T, s kv.Store) {
		if err := s.Put(bg, []byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
		v, ok, err := s.Get(bg, []byte("k"))
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("Get = %q %v %v", v, ok, err)
		}
		if _, ok, _ := s.Get(bg, []byte("nope")); ok {
			t.Fatal("phantom key")
		}
		if err := s.Delete(bg, []byte("k")); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := s.Get(bg, []byte("k")); ok {
			t.Fatal("deleted key visible")
		}
		s.Put(bg, []byte("k"), []byte("v2"))
		v, ok, _ = s.Get(bg, []byte("k"))
		if !ok || string(v) != "v2" {
			t.Fatal("reinsert failed")
		}
	})
}

func TestOverwriteLatestWins(t *testing.T) {
	forEachStore(t, 1<<20, func(t *testing.T, s kv.Store) {
		k := []byte("key")
		for i := 0; i < 50; i++ {
			s.Put(bg, k, keys.EncodeUint64(uint64(i)))
		}
		v, ok, _ := s.Get(bg, k)
		if !ok || keys.DecodeUint64(v) != 49 {
			t.Fatalf("latest version lost: %x", v)
		}
	})
}

func TestFlushAndReadBack(t *testing.T) {
	// Small memtable forces flushes mid-stream; all data must remain
	// visible across the memory/disk boundary.
	forEachStore(t, 32<<10, func(t *testing.T, s kv.Store) {
		const n = 2000
		for i := 0; i < n; i++ {
			if err := s.Put(bg, spread(uint64(i)), keys.EncodeUint64(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i += 7 {
			v, ok, err := s.Get(bg, spread(uint64(i)))
			if err != nil || !ok || keys.DecodeUint64(v) != uint64(i) {
				t.Fatalf("key %d: %v %v %v", i, v, ok, err)
			}
		}
	})
}

func TestScanSortedAndComplete(t *testing.T) {
	forEachStore(t, 64<<10, func(t *testing.T, s kv.Store) {
		if _, ok := s.(*RocksDB); ok && testingIsHash(s) {
			return // scans impractical on hash memtables (§2.3)
		}
		const n = 500
		want := map[string]uint64{}
		for i := 0; i < n; i++ {
			k := spread(uint64(i))
			s.Put(bg, k, keys.EncodeUint64(uint64(i)))
			want[string(k)] = uint64(i)
		}
		pairs, err := s.Scan(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != n {
			t.Fatalf("scan returned %d of %d", len(pairs), n)
		}
		for i := 1; i < len(pairs); i++ {
			if bytes.Compare(pairs[i-1].Key, pairs[i].Key) >= 0 {
				t.Fatal("unsorted scan")
			}
		}
		for _, p := range pairs {
			if want[string(p.Key)] != keys.DecodeUint64(p.Value) {
				t.Fatalf("wrong value for %x", p.Key)
			}
		}
	})
}

// testingIsHash sniffs whether a RocksDB store uses the hash memtable.
func testingIsHash(s kv.Store) bool {
	r, ok := s.(*RocksDB)
	return ok && r.cfg.MemKind == MemHash
}

func TestMultiVersioningGrowsMemtable(t *testing.T) {
	// §3.2: repeatedly updating ONE key fills a multi-versioned memtable
	// and triggers flushes — the exact behaviour FloDB's in-place updates
	// avoid. This is the mechanism behind Fig 16.
	cfg := Config{Dir: t.TempDir(), MemBytes: 32 << 10}
	s, err := NewRocksDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := []byte("hot-key")
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < 2000; i++ {
		if err := s.Put(bg, k, val); err != nil {
			t.Fatal(err)
		}
	}
	if flushes := s.Stats().Flushes; flushes == 0 {
		t.Fatal("single-key updates never filled the multi-versioned memtable")
	}
	v, ok, _ := s.Get(bg, k)
	if !ok || !bytes.Equal(v, val) {
		t.Fatal("hot key lost")
	}
}

func TestConcurrentWriters(t *testing.T) {
	forEachStore(t, 256<<10, func(t *testing.T, s kv.Store) {
		const workers = 8
		const per = 1000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					k := spread(uint64(w*per + i))
					if err := s.Put(bg, k, keys.EncodeUint64(uint64(i))); err != nil {
						panic(err)
					}
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			for i := 0; i < per; i += 97 {
				k := spread(uint64(w*per + i))
				v, ok, err := s.Get(bg, k)
				if err != nil || !ok || keys.DecodeUint64(v) != uint64(i) {
					t.Fatalf("w%d i%d: %v %v %v", w, i, v, ok, err)
				}
			}
		}
	})
}

func TestConcurrentMixed(t *testing.T) {
	forEachStore(t, 128<<10, func(t *testing.T, s kv.Store) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					i++
					s.Put(bg, spread(rng.Uint64()%2048), keys.EncodeUint64(uint64(i)))
				}
			}(w)
		}
		for r := 0; r < 2000; r++ {
			if _, _, err := s.Get(bg, spread(uint64(r%2048))); err != nil {
				t.Fatal(err)
			}
		}
		if !testingIsHash(s) {
			for r := 0; r < 5; r++ {
				pairs, err := s.Scan(bg, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				for i := 1; i < len(pairs); i++ {
					if bytes.Compare(pairs[i-1].Key, pairs[i].Key) >= 0 {
						t.Fatal("unsorted concurrent scan")
					}
				}
			}
		}
		close(stop)
		wg.Wait()
	})
}

func TestRecoveryBaselines(t *testing.T) {
	for _, o := range openers {
		t.Run(o.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := o.open(Config{Dir: dir, MemBytes: 64 << 10})
			if err != nil {
				t.Fatal(err)
			}
			const n = 1000
			for i := 0; i < n; i++ {
				if err := s.Put(bg, spread(uint64(i)), keys.EncodeUint64(uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := o.open(Config{Dir: dir, MemBytes: 64 << 10})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			for i := 0; i < n; i += 13 {
				v, ok, err := s2.Get(bg, spread(uint64(i)))
				if err != nil || !ok || keys.DecodeUint64(v) != uint64(i) {
					t.Fatalf("key %d after restart: %v %v %v", i, v, ok, err)
				}
			}
		})
	}
}

func TestScanSnapshotIgnoresNewerVersions(t *testing.T) {
	// Multi-versioned scan correctness: versions written after the scan's
	// snapshot sequence must be invisible.
	s, err := NewCLSM(Config{Dir: t.TempDir(), MemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Put(bg, spread(uint64(i)), keys.EncodeUint64(0))
	}
	// Capture view+snapshot manually, then write newer versions.
	v := s.view.Load()
	snap := s.seq.Load()
	for i := 0; i < 100; i++ {
		s.Put(bg, spread(uint64(i)), keys.EncodeUint64(999))
	}
	pairs, err := s.scanFrom(bg, v.mem, v.imm, snap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 100 {
		t.Fatalf("snapshot scan returned %d", len(pairs))
	}
	for _, p := range pairs {
		if keys.DecodeUint64(p.Value) != 0 {
			t.Fatal("snapshot scan observed post-snapshot version")
		}
	}
}

func TestHashMemGetNewestVisible(t *testing.T) {
	h := newHashMem()
	k := []byte("k")
	h.Insert(k, 1, keys.KindSet, []byte("v1"))
	h.Insert(k, 5, keys.KindSet, []byte("v5"))
	h.Insert(k, 9, keys.KindDelete, nil)

	if v, seq, kind, ok := h.Get(k, 10); !ok || seq != 9 || kind != keys.KindDelete || v != nil {
		t.Fatalf("snapshot 10: %q %d %v %v", v, seq, kind, ok)
	}
	if v, seq, _, ok := h.Get(k, 6); !ok || seq != 5 || string(v) != "v5" {
		t.Fatalf("snapshot 6: %q %d %v", v, seq, ok)
	}
	if v, seq, _, ok := h.Get(k, 1); !ok || seq != 1 || string(v) != "v1" {
		t.Fatalf("snapshot 1: %q %d %v", v, seq, ok)
	}
	if _, _, _, ok := h.Get(k, 0); ok {
		t.Fatal("snapshot 0 should see nothing")
	}
	if _, _, _, ok := h.Get([]byte("other"), 100); ok {
		t.Fatal("missing key hit")
	}
}

func TestHashMemIteratorSorts(t *testing.T) {
	h := newHashMem()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		h.Insert(keys.EncodeUint64(rng.Uint64()%512), uint64(i+1), keys.KindSet, []byte("v"))
	}
	it := h.NewIterator()
	var prevKey []byte
	var prevSeq uint64
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if prevKey != nil {
			c := bytes.Compare(prevKey, it.Key())
			if c > 0 || (c == 0 && prevSeq <= it.Seq()) {
				t.Fatal("hash iterator violates (key asc, seq desc)")
			}
		}
		prevKey = append(prevKey[:0], it.Key()...)
		prevSeq = it.Seq()
		n++
	}
	if n != 1000 {
		t.Fatalf("iterated %d of 1000 versions", n)
	}
	if h.Len() != 1000 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestSkipMemVersions(t *testing.T) {
	m := newSkipMem()
	k := []byte("k")
	m.Insert(k, 1, keys.KindSet, []byte("v1"))
	m.Insert(k, 3, keys.KindSet, []byte("v3"))
	if v, seq, _, ok := m.Get(k, 2); !ok || seq != 1 || string(v) != "v1" {
		t.Fatalf("snapshot 2: %q@%d %v", v, seq, ok)
	}
	if v, seq, _, ok := m.Get(k, keys.MaxSeq); !ok || seq != 3 || string(v) != "v3" {
		t.Fatalf("snapshot max: %q@%d %v", v, seq, ok)
	}
	if m.Len() != 2 {
		t.Fatal("multi-versioning should keep both versions")
	}
}

func TestStatsProvider(t *testing.T) {
	s, _ := NewLevelDB(Config{Dir: t.TempDir(), MemBytes: 1 << 20})
	defer s.Close()
	s.Put(bg, []byte("a"), []byte("1"))
	s.Get(bg, []byte("a"))
	s.Delete(bg, []byte("a"))
	s.Scan(bg, nil, nil)
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Deletes != 1 || st.Scans != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewLevelDB(Config{}); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func BenchmarkPut(b *testing.B) {
	for _, o := range openers {
		b.Run(o.name, func(b *testing.B) {
			s, err := o.open(Config{Dir: b.TempDir(), MemBytes: 64 << 20, DisableWAL: true})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			val := bytes.Repeat([]byte("v"), 256)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				for pb.Next() {
					s.Put(bg, spread(rng.Uint64()), val)
				}
			})
		})
	}
}

func TestIteratorMatchesScanBaselines(t *testing.T) {
	forEachStore(t, 64<<10, func(t *testing.T, s kv.Store) {
		if ok := testingIsHash(s); ok {
			return // scans impractical on hash memtables (§2.3)
		}
		const n = 800
		for i := 0; i < n; i++ {
			if err := s.Put(bg, spread(uint64(i)), keys.EncodeUint64(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if i := n / 2; true {
			s.Delete(bg, spread(uint64(i))) // a tombstone in range
		}
		want, err := s.Scan(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		it, err := s.NewIterator(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if i >= len(want) || !bytes.Equal(it.Key(), want[i].Key) || !bytes.Equal(it.Value(), want[i].Value) {
				t.Fatalf("iterator diverged from Scan at %d", i)
			}
			i++
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		if i != len(want) {
			t.Fatalf("iterator %d pairs, Scan %d", i, len(want))
		}
	})
}

func TestIteratorPinsSnapshotBaselines(t *testing.T) {
	// The multi-versioned baselines pin ONE snapshot for the iterator's
	// lifetime: writes racing the cursor must stay invisible, however
	// slowly the caller drains it.
	forEachStore(t, 1<<20, func(t *testing.T, s kv.Store) {
		if testingIsHash(s) {
			return
		}
		const n = 200
		for i := 0; i < n; i++ {
			s.Put(bg, spread(uint64(i)), keys.EncodeUint64(0))
		}
		it, err := s.NewIterator(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		count := 0
		for ok := it.First(); ok; ok = it.Next() {
			// Overwrite ahead of the cursor mid-iteration.
			if count == 10 {
				for i := 0; i < n; i++ {
					s.Put(bg, spread(uint64(i)), keys.EncodeUint64(999))
				}
			}
			if keys.DecodeUint64(it.Value()) != 0 {
				t.Fatalf("iterator observed post-snapshot version at %x", it.Key())
			}
			count++
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("iterated %d of %d", count, n)
		}
	})
}

func TestApplyBaselines(t *testing.T) {
	forEachStore(t, 64<<10, func(t *testing.T, s kv.Store) {
		if err := s.Apply(bg, nil); err != nil {
			t.Fatal("nil batch:", err)
		}
		s.Put(bg, []byte("pre"), []byte("old"))
		b := kv.NewBatch()
		const n = 300
		for i := 0; i < n; i++ {
			b.Put(spread(uint64(i)), keys.EncodeUint64(uint64(i)))
		}
		b.Delete([]byte("pre"))
		if err := s.Apply(bg, b); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i += 7 {
			v, ok, err := s.Get(bg, spread(uint64(i)))
			if err != nil || !ok || keys.DecodeUint64(v) != uint64(i) {
				t.Fatalf("batched key %d: %v %v %v", i, v, ok, err)
			}
		}
		if _, ok, _ := s.Get(bg, []byte("pre")); ok {
			t.Fatal("batched delete ineffective")
		}
		if sp, ok := s.(kv.StatsProvider); ok {
			st := sp.Stats()
			if st.Batches != 1 || st.BatchOps != uint64(n+1) {
				t.Fatalf("stats: %+v", st)
			}
		}
	})
}

func TestApplyRecoversBaselines(t *testing.T) {
	// A batch written before an abrupt-but-synced shutdown must recover
	// whole: one WAL record carrying every op.
	for _, o := range openers {
		t.Run(o.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := o.open(Config{Dir: dir, MemBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			b := kv.NewBatch()
			for i := 0; i < 100; i++ {
				b.Put(spread(uint64(i)), keys.EncodeUint64(uint64(i)))
			}
			if err := s.Apply(bg, b); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := o.open(Config{Dir: dir, MemBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			for i := 0; i < 100; i++ {
				v, ok, err := s2.Get(bg, spread(uint64(i)))
				if err != nil || !ok || keys.DecodeUint64(v) != uint64(i) {
					t.Fatalf("batched key %d after restart: %v %v %v", i, v, ok, err)
				}
			}
		})
	}
}
