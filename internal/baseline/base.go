package baseline

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/diskenv"
	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/storage"
	"flodb/internal/wal"
)

// MemKind selects the memtable structure (§2.3: sorted vs unsorted).
type MemKind int

const (
	// MemSkiplist is the default sorted memtable.
	MemSkiplist MemKind = iota
	// MemHash is RocksDB's hash-based memtable (Figs 3–4).
	MemHash
)

// Config parameterizes a baseline store.
type Config struct {
	Dir string
	// MemBytes is the memtable size that triggers a flush (the whole
	// memory component — baselines have a single in-memory level).
	MemBytes int64
	// MemKind selects skiplist or hash memtable.
	MemKind MemKind
	// DisableWAL skips commit logging entirely; every write is then
	// DurabilityNone and per-op logged classes fail with
	// kv.ErrNotSupported, as in FloDB.
	DisableWAL bool
	// Durability is the default class for writes that don't override it
	// per operation (DurabilityDefault resolves to Buffered, or None when
	// the WAL is disabled).
	Durability kv.Durability
	// PersistLimiter models a slower disk (shared with FloDB benches).
	PersistLimiter *diskenv.Limiter
	// Storage configures the shared disk component.
	Storage storage.Options
}

func (c *Config) fillDefaults() error {
	if c.Dir == "" {
		return fmt.Errorf("baseline: Config.Dir is required")
	}
	if c.MemBytes < 0 {
		return fmt.Errorf("baseline: MemBytes %d is negative; want > 0 (or 0 for the 64 MiB default)", c.MemBytes)
	}
	if c.MemBytes == 0 {
		c.MemBytes = 64 << 20
	}
	if !c.Durability.Valid() {
		return fmt.Errorf("baseline: invalid Durability %v", c.Durability)
	}
	if c.DisableWAL {
		if c.Durability == kv.DurabilityBuffered || c.Durability == kv.DurabilitySync {
			return fmt.Errorf("baseline: default Durability %v requires the WAL, but the WAL is disabled: %w", c.Durability, kv.ErrNotSupported)
		}
		c.Durability = kv.DurabilityNone
	} else if c.Durability == kv.DurabilityDefault {
		c.Durability = kv.DurabilityBuffered
	}
	return nil
}

// memHandle pairs a memtable with its WAL generation.
type memHandle struct {
	mem    versionedMem
	wal    *wal.Writer
	walNum uint64
}

// base carries the machinery shared by the four variants: versioned
// memtables, WAL handling, flush scheduling, snapshot reads and scans.
// Locking POLICY lives in the variants; base only supplies mechanism.
type base struct {
	cfg   Config
	store *storage.Store

	// mu guards the handles and lastSeq. The variants ALSO use it as
	// their "global mutex" where their design has one, which is exactly
	// the contention the paper measures.
	mu sync.Mutex
	// snapMu is the snapshot barrier for variants whose memtable inserts
	// run OUTSIDE mu (HyperLevelDB, RocksDB): writers hold the read side
	// from sequence allocation through insert completion, and Snapshot
	// takes the write side while capturing its bound — otherwise a handle
	// could pin a sequence covering an insert still in flight, and a key
	// would pop into existence inside a supposedly repeatable view. (Real
	// RocksDB avoids this by publishing the visible sequence only after
	// the memtable insert; the barrier is the model-sized equivalent.)
	snapMu  sync.RWMutex
	mem     *memHandle
	imm     *memHandle
	immCond *sync.Cond // waits for imm to clear (writer stall, §2.3)
	lastSeq uint64

	flushCh  chan struct{}
	closing  chan struct{}
	closed   atomic.Bool
	wg       sync.WaitGroup
	flushErr atomic.Pointer[error]

	// walMetrics is shared by every WAL segment, so the acked-vs-durable
	// boundary spans memtable switches.
	walMetrics wal.Metrics

	stats struct {
		puts, gets, deletes, scans   atomic.Uint64
		batches, batchOps, iterators atomic.Uint64
		snapshots, checkpoints       atomic.Uint64
		syncBarriers                 atomic.Uint64
	}
}

func (b *base) init(cfg Config) error {
	if err := cfg.fillDefaults(); err != nil {
		return err
	}
	b.cfg = cfg
	store, err := storage.Open(cfg.Dir, cfg.Storage)
	if err != nil {
		return err
	}
	b.store = store
	b.lastSeq = store.LastSeq()
	b.immCond = sync.NewCond(&b.mu)
	b.flushCh = make(chan struct{}, 1)
	b.closing = make(chan struct{})

	if err := b.recoverWALs(); err != nil {
		store.Close()
		return err
	}
	h, err := b.newMemHandle()
	if err != nil {
		store.Close()
		return err
	}
	b.mem = h
	if !cfg.DisableWAL {
		if err := store.SetLogNum(h.walNum, b.lastSeq); err != nil {
			store.Close()
			return err
		}
	}
	b.wg.Add(1)
	go b.flushLoop()
	return nil
}

func (b *base) newVersionedMem() versionedMem {
	if b.cfg.MemKind == MemHash {
		return newHashMem()
	}
	return newSkipMem()
}

func (b *base) newMemHandle() (*memHandle, error) {
	h := &memHandle{mem: b.newVersionedMem()}
	if b.cfg.DisableWAL {
		return h, nil
	}
	h.walNum = b.store.NewFileNum()
	w, err := wal.Create(storage.WALFileName(b.cfg.Dir, h.walNum), wal.Options{Metrics: &b.walMetrics})
	if err != nil {
		return nil, err
	}
	h.wal = w
	return h, nil
}

func (b *base) recoverWALs() error {
	if b.cfg.DisableWAL {
		return nil
	}
	logNum := b.store.LogNum()
	entries, err := os.ReadDir(b.cfg.Dir)
	if err != nil {
		return err
	}
	var segs []uint64
	for _, ent := range entries {
		kind, num := storage.ParseFileName(ent.Name())
		if kind == storage.KindWAL && num >= logNum {
			segs = append(segs, num)
		}
	}
	for i := 0; i < len(segs); i++ { // insertion-sort: few segments
		for j := i; j > 0 && segs[j] < segs[j-1]; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
	for _, num := range segs {
		mem := b.newVersionedMem()
		// ForEachOp decodes single-op and multi-op (batch) records alike;
		// batch atomicity comes from the WAL's per-record CRC framing.
		err := wal.ReplayAll(storage.WALFileName(b.cfg.Dir, num), func(rec []byte) error {
			return kv.ForEachOp(rec, func(kind keys.Kind, key, value []byte) error {
				b.lastSeq++
				mem.Insert(keys.Clone(key), b.lastSeq, kind, keys.Clone(value))
				return nil
			})
		})
		if err != nil {
			return fmt.Errorf("baseline: replay wal %d: %w", num, err)
		}
		if mem.Len() > 0 {
			if _, err := b.store.Flush(mem.NewIterator(), num+1, b.lastSeq); err != nil {
				return err
			}
		}
		os.Remove(storage.WALFileName(b.cfg.Dir, num))
	}
	return nil
}

// --- Write-side mechanism -----------------------------------------------------

// resolveDurability folds per-op options over the configured default and
// rejects logged classes on a store that has no log to back them.
func (b *base) resolveDurability(opts []kv.WriteOption) (kv.Durability, error) {
	d := b.cfg.Durability
	if len(opts) > 0 {
		d = kv.ResolveWriteOptions(b.cfg.Durability, opts...).Durability
	}
	if !d.Valid() {
		return 0, fmt.Errorf("baseline: invalid durability %v", d)
	}
	if d != kv.DurabilityNone && b.cfg.DisableWAL {
		return 0, fmt.Errorf("baseline: %v durability without a WAL: %w", d, kv.ErrNotSupported)
	}
	return d, nil
}

// commitSync is the commit point of a Sync-class write: it blocks until
// the group-commit queue covers the record appended at off. Durability is
// prefix-ordered: a live sealed segment's tail is synced FIRST, so a
// Sync-acked write never survives a crash that loses an earlier acked
// write (no holes in commit order). A writer closed underneath us was
// retired by a completed flush, so its contents are durable through
// sstables and the barrier is satisfied.
func (b *base) commitSync(w *wal.Writer, off int64) error {
	if w == nil {
		return nil
	}
	b.mu.Lock()
	imm := b.imm
	b.mu.Unlock()
	if imm != nil && imm.wal != nil && imm.wal != w {
		if err := imm.wal.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
			return err
		}
	}
	if err := w.SyncTo(off); err != nil && !errors.Is(err, wal.ErrClosed) {
		return err
	}
	return nil
}

// insertLocked assigns a sequence number and inserts into the current
// memtable, logging first (unless the op is DurabilityNone). Caller holds
// mu; the actual memtable insert happens under mu (used by the LevelDB
// write leader). It returns the commit-record position for a Sync-class
// caller to group-commit AFTER releasing mu.
func (b *base) insertLocked(kind keys.Kind, key, value []byte, logged bool) (*wal.Writer, int64, error) {
	var w *wal.Writer
	var off int64
	if logged {
		var err error
		w, off, err = b.logRecord(b.mem, kind, key, value)
		if err != nil {
			return nil, 0, err
		}
	}
	b.lastSeq++
	b.mem.mem.Insert(key, b.lastSeq, kind, value)
	b.maybeScheduleFlushLocked()
	return w, off, nil
}

// beginConcurrentInsert allocates a sequence number and returns the target
// handle under mu; the caller inserts outside the lock (HyperLevelDB /
// RocksDB / cLSM styles). waitRoomLocked must have been honored.
func (b *base) beginConcurrentInsertLocked() (*memHandle, uint64) {
	b.lastSeq++
	return b.mem, b.lastSeq
}

func (b *base) logRecord(h *memHandle, kind keys.Kind, key, value []byte) (*wal.Writer, int64, error) {
	if h.wal == nil {
		return nil, 0, nil
	}
	off, err := h.wal.Append(kv.EncodeRecord(kind, key, value))
	if err != nil {
		return nil, 0, err
	}
	return h.wal, off, nil
}

// applyBatch is the shared Apply mechanism for the mutex-ordered variants
// (LevelDB, HyperLevelDB, RocksDB): one WAL record for the whole batch,
// then every operation inserted under the global mutex with consecutive
// sequence numbers. Atomicity falls out of the multi-versioned design —
// the batch's version range is contiguous, and recovery replays the single
// record all-or-nothing. Under DurabilitySync the whole batch costs one
// group-committed fsync, issued after the global mutex is released.
func (b *base) applyBatch(ctx context.Context, batch *kv.Batch, opts []kv.WriteOption) error {
	if b.closed.Load() {
		return ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := b.loadFlushErr(); err != nil {
		return err
	}
	d, err := b.resolveDurability(opts)
	if err != nil {
		return err
	}
	if batch == nil || batch.Len() == 0 {
		return nil
	}
	b.stats.batches.Add(1)
	b.stats.batchOps.Add(uint64(batch.Len()))
	w, off, err := b.applyBatchLocked(ctx, batch, d)
	if err != nil {
		return err
	}
	if d == kv.DurabilitySync {
		return b.commitSync(w, off)
	}
	return nil
}

func (b *base) applyBatchLocked(ctx context.Context, batch *kv.Batch, d kv.Durability) (*wal.Writer, int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.waitRoomCtxLocked(ctx); err != nil {
		return nil, 0, err
	}
	var w *wal.Writer
	var off int64
	if d != kv.DurabilityNone && b.mem.wal != nil {
		var err error
		off, err = b.mem.wal.Append(kv.EncodeBatchRecord(batch))
		if err != nil {
			return nil, 0, err
		}
		w = b.mem.wal
	}
	for _, op := range batch.Ops() {
		b.lastSeq++
		b.mem.mem.Insert(op.Key, b.lastSeq, op.Kind, op.Value)
	}
	b.maybeScheduleFlushLocked()
	return w, off, nil
}

// Sync is the durability barrier of the kv.Store contract: it blocks
// until every mutation acknowledged before the call is crash-durable,
// promoting the acked-but-buffered window with at most one group-
// committed fsync per live segment (sealed first, then active — prefix
// order). Without a WAL there is nothing buffered to promote.
func (b *base) Sync(ctx context.Context) error {
	if b.closed.Load() {
		return ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	b.stats.syncBarriers.Add(1)
	if b.cfg.DisableWAL {
		return nil
	}
	// A failed flush means sealed-segment records may be neither in
	// sstables nor syncable — don't claim a durable barrier over them.
	if err := b.loadFlushErr(); err != nil {
		return err
	}
	b.mu.Lock()
	mem, imm := b.mem, b.imm
	b.mu.Unlock()
	for _, h := range []*memHandle{imm, mem} {
		if h == nil || h.wal == nil {
			continue
		}
		if err := h.wal.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
			return err
		}
	}
	return nil
}

// waitRoomLocked blocks (on mu) while the memtable is full and the
// previous one is still flushing — the writer delay of §2.3.
func (b *base) waitRoomLocked() error {
	return b.waitRoomCtxLocked(context.Background())
}

// waitRoomCtxLocked is waitRoomLocked with a cancellation point at every
// cond wakeup. (A Wait in progress cannot be interrupted by the context;
// the flush loop's broadcast bounds the latency.)
func (b *base) waitRoomCtxLocked(ctx context.Context) error {
	for b.mem.mem.ApproxBytes() >= b.cfg.MemBytes && b.imm != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := b.loadFlushErr(); err != nil {
			return err
		}
		b.immCond.Wait()
	}
	if b.mem.mem.ApproxBytes() >= b.cfg.MemBytes && b.imm == nil {
		return b.switchMemLocked()
	}
	return nil
}

// switchMemLocked seals the current memtable and installs a fresh one.
// The sealed segment's staging buffer is flushed to the OS before the
// successor takes its first append, so the cross-segment replay order
// stays a clean prefix after a crash.
func (b *base) switchMemLocked() error {
	// Seal-flush first: if it fails, no successor handle (WAL file + fd)
	// has been created yet, so a persistently failing disk doesn't leak
	// one orphan segment per retry.
	if b.mem.wal != nil {
		if err := b.mem.wal.Flush(); err != nil {
			return err
		}
	}
	h, err := b.newMemHandle()
	if err != nil {
		return err
	}
	b.imm = b.mem
	b.mem = h
	select {
	case b.flushCh <- struct{}{}:
	default:
	}
	return nil
}

func (b *base) maybeScheduleFlushLocked() {
	if b.mem.mem.ApproxBytes() >= b.cfg.MemBytes && b.imm == nil {
		// Ignore the error here; the next write surfaces it.
		_ = b.switchMemLocked()
	}
}

func (b *base) flushLoop() {
	defer b.wg.Done()
	for {
		select {
		case <-b.closing:
			return
		case <-b.flushCh:
		}
		b.mu.Lock()
		imm := b.imm
		b.mu.Unlock()
		if imm == nil {
			continue
		}
		if err := b.flushHandle(imm); err != nil {
			b.setFlushErr(err)
			return
		}
		b.mu.Lock()
		b.imm = nil
		b.immCond.Broadcast()
		b.mu.Unlock()
	}
}

// flushHandle persists one sealed memtable. For the hash memtable,
// NewIterator performs the full sort (§2.3) — while it runs, writers that
// fill the new memtable stall in waitRoomLocked, reproducing Fig 4.
func (b *base) flushHandle(h *memHandle) error {
	b.cfg.PersistLimiter.Acquire(h.mem.ApproxBytes())
	b.mu.Lock()
	newLog := b.mem.walNum
	lastSeq := b.lastSeq
	b.mu.Unlock()
	if b.cfg.DisableWAL {
		newLog = b.store.NewFileNum()
	}
	if _, err := b.store.Flush(h.mem.NewIterator(), newLog, lastSeq); err != nil {
		return err
	}
	if h.wal != nil {
		// The handle's contents just reached sstables: its records are
		// durable regardless of fsync coverage. Advance the boundary
		// before retiring the segment.
		h.wal.MarkContentsDurable()
		h.wal.Close()
		os.Remove(storage.WALFileName(b.cfg.Dir, h.walNum))
	}
	return nil
}

func (b *base) loadFlushErr() error {
	if p := b.flushErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (b *base) setFlushErr(err error) {
	if err != nil {
		b.flushErr.CompareAndSwap(nil, &err)
		b.mu.Lock()
		b.immCond.Broadcast()
		b.mu.Unlock()
	}
}

// --- Read-side mechanism -------------------------------------------------------

// snapshotLocked captures the read view under mu.
func (b *base) snapshotLocked() (mem, imm *memHandle, snap uint64) {
	return b.mem, b.imm, b.lastSeq
}

// getFrom resolves a read against a captured view. ver, when non-nil, is
// a pinned disk version read at the snap bound (long-lived snapshot
// handles); nil reads the live disk state (point operations, whose view
// was captured moments ago).
func (b *base) getFrom(mem, imm *memHandle, ver *storage.Version, snap uint64, key []byte) ([]byte, bool, error) {
	if v, _, kind, ok := mem.mem.Get(key, snap); ok {
		if kind == keys.KindDelete {
			return nil, false, nil
		}
		return v, true, nil
	}
	if imm != nil {
		if v, _, kind, ok := imm.mem.Get(key, snap); ok {
			if kind == keys.KindDelete {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	var (
		v    []byte
		kind keys.Kind
		ok   bool
		err  error
	)
	if ver != nil {
		v, _, kind, ok, err = b.store.GetAt(ver, key, snap)
	} else {
		v, _, kind, ok, err = b.store.Get(key)
	}
	if err != nil {
		return nil, false, err
	}
	if !ok || kind == keys.KindDelete {
		return nil, false, nil
	}
	return v, true, nil
}

// scanFrom produces a consistent snapshot scan at snap: a drained
// snapshot iterator. Multi-versioning makes this conflict-free: versions
// newer than snap are simply skipped — the approach whose memory cost §3.2
// criticizes, but which needs no restarts.
func (b *base) scanFrom(ctx context.Context, mem, imm *memHandle, snap uint64, low, high []byte) ([]kv.Pair, error) {
	it, err := b.newSnapshotIter(ctx, mem, imm, nil, snap, low, high, nil)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []kv.Pair
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, kv.Pair{Key: keys.Clone(it.Key()), Value: keys.Clone(it.Value())})
	}
	return out, it.Err()
}

// newSnapshotIter builds a streaming iterator over a captured view. The
// multi-versioned design pins ONE snapshot for the iterator's whole
// lifetime — versions newer than snap stay invisible however long the
// caller iterates, with no restarts (the memory-for-stability trade §3.2
// discusses). ver, when non-nil, is an already-pinned disk version to
// iterate (the iterator takes its own reference); nil pins the current
// one. The pin is released on Close; onClose, when non-nil, runs after
// the release (the variants' end-of-read critical section).
func (b *base) newSnapshotIter(ctx context.Context, mem, imm *memHandle, ver *storage.Version, snap uint64, low, high []byte, onClose func()) (kv.Iterator, error) {
	if ver == nil {
		ver = b.store.PinVersion()
	} else {
		b.store.AcquireVersion(ver)
	}
	its := []storage.InternalIterator{mem.mem.NewIterator()}
	if imm != nil {
		its = append(its, imm.mem.NewIterator())
	}
	dit, pins, err := b.store.NewVersionIterator(ver)
	if err != nil {
		b.store.ReleaseVersion(ver)
		return nil, err
	}
	its = append(its, dit)
	store := b.store
	return storage.NewSnapshotIter(ctx, storage.NewMergingIterator(its...), storage.SnapshotIterOptions{
		Low: low, High: high, MaxSeq: snap,
		OnClose: func() {
			pins()
			store.ReleaseVersion(ver)
			if onClose != nil {
				onClose()
			}
		},
	}), nil
}

// --- Snapshot handles ---------------------------------------------------------

// newSnapshot wraps a captured view as a long-lived kv.View. The
// multi-versioned memtables make this nearly free: the handle references
// the captured memtable generation(s) — whose versions <= snap survive
// arbitrarily many later writes — and pins the current disk version so
// compaction cannot delete the files the bound still needs. The
// baselines simply hold on to what multi-versioning already kept;
// FloDB's single-versioned memory component reaches the same O(1)
// snapshot through seq-pinned version chains in its skiplist.
func (b *base) newSnapshot(mem, imm *memHandle, snap uint64) *baseSnapshot {
	b.stats.snapshots.Add(1)
	return &baseSnapshot{b: b, mem: mem, imm: imm, snap: snap, ver: b.store.PinVersion()}
}

// baseSnapshot is a pinned read view at a sequence bound.
type baseSnapshot struct {
	b        *base
	mem, imm *memHandle
	snap     uint64
	ver      *storage.Version
	closed   atomic.Bool
}

var _ kv.View = (*baseSnapshot)(nil)

func (s *baseSnapshot) check(ctx context.Context) error {
	if s.closed.Load() {
		return ErrSnapshotReleasedBaseline
	}
	if s.b.closed.Load() {
		return ErrClosedBaseline
	}
	return ctx.Err()
}

// Get returns the value key had at the snapshot point (a copy).
func (s *baseSnapshot) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := s.check(ctx); err != nil {
		return nil, false, err
	}
	v, ok, err := s.b.getFrom(s.mem, s.imm, s.ver, s.snap, key)
	if err != nil || !ok {
		return nil, false, err
	}
	return keys.Clone(v), true, nil
}

// Scan materializes the range at the snapshot point.
func (s *baseSnapshot) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	it, err := s.NewIterator(ctx, low, high)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []kv.Pair
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, kv.Pair{Key: keys.Clone(it.Key()), Value: keys.Clone(it.Value())})
	}
	return out, it.Err()
}

// NewIterator streams the snapshot's range. The iterator holds its own
// version pin, so it survives the handle's Close.
func (s *baseSnapshot) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	s.b.stats.iterators.Add(1)
	return s.b.newSnapshotIter(ctx, s.mem, s.imm, s.ver, s.snap, low, high, nil)
}

// Close releases the snapshot's disk pin. Idempotent; outstanding
// iterators keep their own pins and stay valid.
func (s *baseSnapshot) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.b.store.ReleaseVersion(s.ver)
	return nil
}

// --- Checkpoint ---------------------------------------------------------------

// Checkpoint syncs the WAL segments and clones the store into dir via
// the storage checkpoint path (hard-linked tables + copied WAL tail +
// fresh manifest). Shared by all four variants.
//
// WAL appends are buffered, so around a memtable switch the sealed
// segment's file can lag its logical contents while the successor
// segment takes newer records — copying in that window would leave a
// hole in the middle of history. Both segments are therefore synced
// first, and the copy is validated by the memtable handle being the same
// before and after: if a switch raced the copy, the attempt is discarded
// and retried. (The storage layer independently retries on WAL turnover
// from completed flushes via its log-number check.)
func (b *base) Checkpoint(ctx context.Context, dir string) error {
	if b.closed.Load() {
		return ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := b.loadFlushErr(); err != nil {
		return err
	}
	b.stats.checkpoints.Add(1)
	const retries = 4
	for attempt := 0; attempt < retries; attempt++ {
		b.mu.Lock()
		mem, imm := b.mem, b.imm
		b.mu.Unlock()
		// Sealed-segment sync first (flush order), then the active one. A
		// handle flushed meanwhile closes its WAL; its contents are then
		// in tables, which the log-number check accounts for.
		for _, h := range []*memHandle{imm, mem} {
			if h == nil || h.wal == nil {
				continue
			}
			if err := h.wal.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
				return err
			}
		}
		if err := b.store.Checkpoint(dir); err != nil {
			return err
		}
		b.mu.Lock()
		stable := b.mem == mem
		b.mu.Unlock()
		if stable {
			return nil
		}
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
	}
	return fmt.Errorf("baseline: checkpoint %s: memtable turnover outpaced the copy %d times", dir, retries)
}

// closeCommon shuts down the flush loop and persists what remains. Any
// segment whose contents do NOT reach sstables here (flush failure paths)
// has its tail synced before closing — wal.Writer.Close does not fsync,
// and a clean shutdown must never widen the acked-but-lost window.
func (b *base) closeCommon() error {
	if b.closed.Swap(true) {
		return nil
	}
	close(b.closing)
	b.wg.Wait()

	firstErr := b.loadFlushErr()
	memFlushed := false
	if firstErr == nil {
		if b.imm != nil {
			if err := b.flushHandle(b.imm); err != nil {
				firstErr = err // imm stays stranded; its tail is synced below
			} else {
				b.imm = nil
			}
		}
		if firstErr == nil {
			if b.mem.mem.Len() > 0 {
				newLog := b.mem.walNum + 1
				if b.cfg.DisableWAL {
					newLog = b.store.NewFileNum()
				}
				if _, err := b.store.Flush(b.mem.mem.NewIterator(), newLog, b.lastSeq); err != nil {
					firstErr = err
				} else {
					memFlushed = true
					if b.mem.wal != nil {
						b.mem.wal.MarkContentsDurable()
						os.Remove(storage.WALFileName(b.cfg.Dir, b.mem.walNum))
					}
				}
			} else {
				memFlushed = true // nothing unpersisted; the tail is redundant
			}
		}
	}
	// A stranded sealed handle (flush failure) still holds acked records:
	// sync and close its segment too.
	if b.imm != nil && b.imm.wal != nil {
		if err := b.imm.wal.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) && firstErr == nil {
			firstErr = err
		}
		if err := b.imm.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if b.mem.wal != nil {
		if !memFlushed {
			if err := b.mem.wal.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) && firstErr == nil {
				firstErr = err
			}
		}
		if err := b.mem.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := b.store.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// CrashForTesting abandons the store the way a crash would: background
// threads stop, every live WAL segment is Abandoned (its unflushed
// staging tail is LOST), and no close-time flush or sync runs. Durability
// tests use it to open the acked-but-lost window deliberately; production
// code must use Close.
func (b *base) CrashForTesting() {
	if b.closed.Swap(true) {
		return
	}
	close(b.closing)
	// Writers parked in waitRoomCtxLocked wait on immCond for a flush
	// loop that is now gone; the sticky error wakes and fails them.
	b.setFlushErr(ErrClosedBaseline)
	b.wg.Wait()
	b.mu.Lock()
	mem, imm := b.mem, b.imm
	b.mu.Unlock()
	if imm != nil && imm.wal != nil {
		imm.wal.Abandon()
	}
	if mem.wal != nil {
		mem.wal.Abandon()
	}
	b.store.Close()
}

// WaitDiskQuiesce blocks until the pending flush and all compactions
// settle (experiment setup, §5.2).
func (b *base) WaitDiskQuiesce() {
	for {
		b.mu.Lock()
		busy := b.imm != nil
		b.mu.Unlock()
		if !busy {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.store.WaitForCompactions()
}

// Stats reports shared counters.
func (b *base) Stats() kv.Stats {
	s := kv.Stats{
		Puts:         b.stats.puts.Load(),
		Gets:         b.stats.gets.Load(),
		Deletes:      b.stats.deletes.Load(),
		Scans:        b.stats.scans.Load(),
		Batches:      b.stats.batches.Load(),
		BatchOps:     b.stats.batchOps.Load(),
		Iterators:    b.stats.iterators.Load(),
		Snapshots:    b.stats.snapshots.Load(),
		Checkpoints:  b.stats.checkpoints.Load(),
		SyncBarriers: b.stats.syncBarriers.Load(),
	}
	ws := b.walMetrics.Snapshot()
	s.AckedSeq = ws.Appends
	s.DurableSeq = ws.Durable
	s.WALSyncs = ws.Syncs
	s.WALSyncRequests = ws.SyncRequests
	m := b.store.Metrics()
	s.Flushes = m.Flushes
	s.Compactions = m.Compactions
	s.BlockCacheHits = m.BlockCacheHits
	s.BlockCacheMisses = m.BlockCacheMisses
	s.BlockCacheEvictions = m.BlockCacheEvictions
	s.BlockCacheBytes = m.BlockCacheBytes
	s.TableCacheHits = m.TableCacheHits
	s.TableCacheMisses = m.TableCacheMisses
	s.BloomChecks = m.BloomChecks
	s.BloomMisses = m.BloomNegatives
	return s
}

// ErrClosedBaseline is returned by operations on a closed baseline store.
// It wraps kv.ErrClosed, so errors.Is(err, kv.ErrClosed) holds.
var ErrClosedBaseline = fmt.Errorf("baseline: %w", kv.ErrClosed)

// ErrSnapshotReleasedBaseline is returned by reads through a Closed
// snapshot handle. It wraps kv.ErrSnapshotReleased.
var ErrSnapshotReleasedBaseline = fmt.Errorf("baseline: %w", kv.ErrSnapshotReleased)
