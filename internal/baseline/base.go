package baseline

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/diskenv"
	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/storage"
	"flodb/internal/wal"
)

// MemKind selects the memtable structure (§2.3: sorted vs unsorted).
type MemKind int

const (
	// MemSkiplist is the default sorted memtable.
	MemSkiplist MemKind = iota
	// MemHash is RocksDB's hash-based memtable (Figs 3–4).
	MemHash
)

// Config parameterizes a baseline store.
type Config struct {
	Dir string
	// MemBytes is the memtable size that triggers a flush (the whole
	// memory component — baselines have a single in-memory level).
	MemBytes int64
	// MemKind selects skiplist or hash memtable.
	MemKind MemKind
	// DisableWAL / SyncWAL as in FloDB.
	DisableWAL bool
	SyncWAL    bool
	// PersistLimiter models a slower disk (shared with FloDB benches).
	PersistLimiter *diskenv.Limiter
	// Storage configures the shared disk component.
	Storage storage.Options
}

func (c *Config) fillDefaults() error {
	if c.Dir == "" {
		return fmt.Errorf("baseline: Config.Dir is required")
	}
	if c.MemBytes <= 0 {
		c.MemBytes = 64 << 20
	}
	return nil
}

// memHandle pairs a memtable with its WAL generation.
type memHandle struct {
	mem    versionedMem
	wal    *wal.Writer
	walNum uint64
}

// base carries the machinery shared by the four variants: versioned
// memtables, WAL handling, flush scheduling, snapshot reads and scans.
// Locking POLICY lives in the variants; base only supplies mechanism.
type base struct {
	cfg   Config
	store *storage.Store

	// mu guards the handles and lastSeq. The variants ALSO use it as
	// their "global mutex" where their design has one, which is exactly
	// the contention the paper measures.
	mu      sync.Mutex
	mem     *memHandle
	imm     *memHandle
	immCond *sync.Cond // waits for imm to clear (writer stall, §2.3)
	lastSeq uint64

	flushCh  chan struct{}
	closing  chan struct{}
	closed   atomic.Bool
	wg       sync.WaitGroup
	flushErr atomic.Pointer[error]

	stats struct {
		puts, gets, deletes, scans   atomic.Uint64
		batches, batchOps, iterators atomic.Uint64
	}
}

func (b *base) init(cfg Config) error {
	if err := cfg.fillDefaults(); err != nil {
		return err
	}
	b.cfg = cfg
	store, err := storage.Open(cfg.Dir, cfg.Storage)
	if err != nil {
		return err
	}
	b.store = store
	b.lastSeq = store.LastSeq()
	b.immCond = sync.NewCond(&b.mu)
	b.flushCh = make(chan struct{}, 1)
	b.closing = make(chan struct{})

	if err := b.recoverWALs(); err != nil {
		store.Close()
		return err
	}
	h, err := b.newMemHandle()
	if err != nil {
		store.Close()
		return err
	}
	b.mem = h
	if !cfg.DisableWAL {
		if err := store.SetLogNum(h.walNum, b.lastSeq); err != nil {
			store.Close()
			return err
		}
	}
	b.wg.Add(1)
	go b.flushLoop()
	return nil
}

func (b *base) newVersionedMem() versionedMem {
	if b.cfg.MemKind == MemHash {
		return newHashMem()
	}
	return newSkipMem()
}

func (b *base) newMemHandle() (*memHandle, error) {
	h := &memHandle{mem: b.newVersionedMem()}
	if b.cfg.DisableWAL {
		return h, nil
	}
	h.walNum = b.store.NewFileNum()
	w, err := wal.Create(storage.WALFileName(b.cfg.Dir, h.walNum), wal.Options{SyncEvery: b.cfg.SyncWAL})
	if err != nil {
		return nil, err
	}
	h.wal = w
	return h, nil
}

func (b *base) recoverWALs() error {
	if b.cfg.DisableWAL {
		return nil
	}
	logNum := b.store.LogNum()
	entries, err := os.ReadDir(b.cfg.Dir)
	if err != nil {
		return err
	}
	var segs []uint64
	for _, ent := range entries {
		kind, num := storage.ParseFileName(ent.Name())
		if kind == storage.KindWAL && num >= logNum {
			segs = append(segs, num)
		}
	}
	for i := 0; i < len(segs); i++ { // insertion-sort: few segments
		for j := i; j > 0 && segs[j] < segs[j-1]; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
	for _, num := range segs {
		mem := b.newVersionedMem()
		// ForEachOp decodes single-op and multi-op (batch) records alike;
		// batch atomicity comes from the WAL's per-record CRC framing.
		err := wal.ReplayAll(storage.WALFileName(b.cfg.Dir, num), func(rec []byte) error {
			return kv.ForEachOp(rec, func(kind keys.Kind, key, value []byte) error {
				b.lastSeq++
				mem.Insert(keys.Clone(key), b.lastSeq, kind, keys.Clone(value))
				return nil
			})
		})
		if err != nil {
			return fmt.Errorf("baseline: replay wal %d: %w", num, err)
		}
		if mem.Len() > 0 {
			if _, err := b.store.Flush(mem.NewIterator(), num+1, b.lastSeq); err != nil {
				return err
			}
		}
		os.Remove(storage.WALFileName(b.cfg.Dir, num))
	}
	return nil
}

// --- Write-side mechanism -----------------------------------------------------

// insertLocked assigns a sequence number and inserts into the current
// memtable, logging first. Caller holds mu; the actual memtable insert
// happens under mu (used by the LevelDB write leader).
func (b *base) insertLocked(kind keys.Kind, key, value []byte) error {
	if err := b.logRecord(b.mem, kind, key, value); err != nil {
		return err
	}
	b.lastSeq++
	b.mem.mem.Insert(key, b.lastSeq, kind, value)
	b.maybeScheduleFlushLocked()
	return nil
}

// beginConcurrentInsert allocates a sequence number and returns the target
// handle under mu; the caller inserts outside the lock (HyperLevelDB /
// RocksDB / cLSM styles). waitRoomLocked must have been honored.
func (b *base) beginConcurrentInsertLocked() (*memHandle, uint64) {
	b.lastSeq++
	return b.mem, b.lastSeq
}

func (b *base) logRecord(h *memHandle, kind keys.Kind, key, value []byte) error {
	if h.wal == nil {
		return nil
	}
	return h.wal.Append(kv.EncodeRecord(kind, key, value))
}

// applyBatch is the shared Apply mechanism for the mutex-ordered variants
// (LevelDB, HyperLevelDB, RocksDB): one WAL record for the whole batch,
// then every operation inserted under the global mutex with consecutive
// sequence numbers. Atomicity falls out of the multi-versioned design —
// the batch's version range is contiguous, and recovery replays the single
// record all-or-nothing.
func (b *base) applyBatch(batch *kv.Batch) error {
	if b.closed.Load() {
		return ErrClosedBaseline
	}
	if err := b.loadFlushErr(); err != nil {
		return err
	}
	if batch == nil || batch.Len() == 0 {
		return nil
	}
	b.stats.batches.Add(1)
	b.stats.batchOps.Add(uint64(batch.Len()))
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.waitRoomLocked(); err != nil {
		return err
	}
	if b.mem.wal != nil {
		if err := b.mem.wal.Append(kv.EncodeBatchRecord(batch)); err != nil {
			return err
		}
	}
	for _, op := range batch.Ops() {
		b.lastSeq++
		b.mem.mem.Insert(op.Key, b.lastSeq, op.Kind, op.Value)
	}
	b.maybeScheduleFlushLocked()
	return nil
}

// waitRoomLocked blocks (on mu) while the memtable is full and the
// previous one is still flushing — the writer delay of §2.3.
func (b *base) waitRoomLocked() error {
	for b.mem.mem.ApproxBytes() >= b.cfg.MemBytes && b.imm != nil {
		if err := b.loadFlushErr(); err != nil {
			return err
		}
		b.immCond.Wait()
	}
	if b.mem.mem.ApproxBytes() >= b.cfg.MemBytes && b.imm == nil {
		return b.switchMemLocked()
	}
	return nil
}

// switchMemLocked seals the current memtable and installs a fresh one.
func (b *base) switchMemLocked() error {
	h, err := b.newMemHandle()
	if err != nil {
		return err
	}
	b.imm = b.mem
	b.mem = h
	select {
	case b.flushCh <- struct{}{}:
	default:
	}
	return nil
}

func (b *base) maybeScheduleFlushLocked() {
	if b.mem.mem.ApproxBytes() >= b.cfg.MemBytes && b.imm == nil {
		// Ignore the error here; the next write surfaces it.
		_ = b.switchMemLocked()
	}
}

func (b *base) flushLoop() {
	defer b.wg.Done()
	for {
		select {
		case <-b.closing:
			return
		case <-b.flushCh:
		}
		b.mu.Lock()
		imm := b.imm
		b.mu.Unlock()
		if imm == nil {
			continue
		}
		if err := b.flushHandle(imm); err != nil {
			b.setFlushErr(err)
			return
		}
		b.mu.Lock()
		b.imm = nil
		b.immCond.Broadcast()
		b.mu.Unlock()
	}
}

// flushHandle persists one sealed memtable. For the hash memtable,
// NewIterator performs the full sort (§2.3) — while it runs, writers that
// fill the new memtable stall in waitRoomLocked, reproducing Fig 4.
func (b *base) flushHandle(h *memHandle) error {
	b.cfg.PersistLimiter.Acquire(h.mem.ApproxBytes())
	b.mu.Lock()
	newLog := b.mem.walNum
	lastSeq := b.lastSeq
	b.mu.Unlock()
	if b.cfg.DisableWAL {
		newLog = b.store.NewFileNum()
	}
	if _, err := b.store.Flush(h.mem.NewIterator(), newLog, lastSeq); err != nil {
		return err
	}
	if h.wal != nil {
		h.wal.Close()
		os.Remove(storage.WALFileName(b.cfg.Dir, h.walNum))
	}
	return nil
}

func (b *base) loadFlushErr() error {
	if p := b.flushErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (b *base) setFlushErr(err error) {
	if err != nil {
		b.flushErr.CompareAndSwap(nil, &err)
		b.mu.Lock()
		b.immCond.Broadcast()
		b.mu.Unlock()
	}
}

// --- Read-side mechanism -------------------------------------------------------

// snapshotLocked captures the read view under mu.
func (b *base) snapshotLocked() (mem, imm *memHandle, snap uint64) {
	return b.mem, b.imm, b.lastSeq
}

// getFrom resolves a read against a captured view.
func (b *base) getFrom(mem, imm *memHandle, snap uint64, key []byte) ([]byte, bool, error) {
	if v, _, kind, ok := mem.mem.Get(key, snap); ok {
		if kind == keys.KindDelete {
			return nil, false, nil
		}
		return v, true, nil
	}
	if imm != nil {
		if v, _, kind, ok := imm.mem.Get(key, snap); ok {
			if kind == keys.KindDelete {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	v, _, kind, ok, err := b.store.Get(key)
	if err != nil {
		return nil, false, err
	}
	if !ok || kind == keys.KindDelete {
		return nil, false, nil
	}
	return v, true, nil
}

// scanFrom produces a consistent snapshot scan at snap: a drained
// snapshot iterator. Multi-versioning makes this conflict-free: versions
// newer than snap are simply skipped — the approach whose memory cost §3.2
// criticizes, but which needs no restarts.
func (b *base) scanFrom(mem, imm *memHandle, snap uint64, low, high []byte) ([]kv.Pair, error) {
	it, err := b.newSnapshotIter(mem, imm, snap, low, high, nil)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []kv.Pair
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, kv.Pair{Key: keys.Clone(it.Key()), Value: keys.Clone(it.Value())})
	}
	return out, it.Err()
}

// newSnapshotIter builds a streaming iterator over a captured view. The
// multi-versioned design pins ONE snapshot for the iterator's whole
// lifetime — versions newer than snap stay invisible however long the
// caller iterates, with no restarts (the memory-for-stability trade §3.2
// discusses). The disk version stays pinned until Close; onClose, when
// non-nil, runs after the release (the variants' end-of-read critical
// section).
func (b *base) newSnapshotIter(mem, imm *memHandle, snap uint64, low, high []byte, onClose func()) (kv.Iterator, error) {
	its := []storage.InternalIterator{mem.mem.NewIterator()}
	if imm != nil {
		its = append(its, imm.mem.NewIterator())
	}
	dit, release, err := b.store.NewIterator()
	if err != nil {
		return nil, err
	}
	its = append(its, dit)
	return &snapshotIter{
		m:       storage.NewMergingIterator(its...),
		low:     keys.Clone(low),
		high:    keys.Clone(high),
		snap:    snap,
		release: release,
		onClose: onClose,
	}, nil
}

// snapshotIter streams live pairs <= snap in key order, deduplicating
// versions and skipping tombstones as it goes.
type snapshotIter struct {
	m         storage.InternalIterator
	low, high []byte
	snap      uint64
	release   func()
	onClose   func()

	lastKey    []byte
	haveLast   bool
	positioned bool
	onPair     bool
	closed     bool
}

var _ kv.Iterator = (*snapshotIter)(nil)

// First positions at the first live pair of the range.
func (it *snapshotIter) First() bool {
	if it.closed {
		return false
	}
	it.positioned = true
	it.haveLast = false
	it.m.Seek(it.low)
	return it.settle()
}

// Seek positions at the first live pair with key >= key (clamped to low).
func (it *snapshotIter) Seek(key []byte) bool {
	if it.closed {
		return false
	}
	if it.low != nil && (key == nil || keys.Compare(key, it.low) < 0) {
		key = it.low
	}
	it.positioned = true
	it.haveLast = false
	it.m.Seek(key)
	return it.settle()
}

// Next advances past the current key's remaining versions to the next
// live pair; unpositioned, it is equivalent to First.
func (it *snapshotIter) Next() bool {
	if it.closed {
		return false
	}
	if !it.positioned {
		return it.First()
	}
	if it.m.Valid() {
		it.m.Next()
	}
	return it.settle()
}

// settle skips versions newer than the snapshot, superseded versions of an
// already-visited key, and tombstones, stopping on the next live pair.
func (it *snapshotIter) settle() bool {
	it.onPair = false
	for ; it.m.Valid(); it.m.Next() {
		k := it.m.Key()
		if it.high != nil && keys.Compare(k, it.high) >= 0 {
			return false
		}
		if it.m.Seq() > it.snap {
			continue // newer than the snapshot: invisible
		}
		if it.haveLast && keys.Equal(it.lastKey, k) {
			continue // superseded version of a visited key
		}
		it.lastKey = append(it.lastKey[:0], k...)
		it.haveLast = true
		if it.m.Kind() == keys.KindDelete {
			continue
		}
		it.onPair = true
		return true
	}
	return false
}

// Key returns the current key; the slice is valid until the next advance.
func (it *snapshotIter) Key() []byte {
	if !it.onPair {
		return nil
	}
	return it.m.Key()
}

// Value returns the current value, under the same aliasing rule as Key.
func (it *snapshotIter) Value() []byte {
	if !it.onPair {
		return nil
	}
	return it.m.Value()
}

// Err returns the first error of the underlying merge.
func (it *snapshotIter) Err() error { return it.m.Err() }

// Close unpins the disk snapshot. It is idempotent.
func (it *snapshotIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.onPair = false
	it.release()
	if it.onClose != nil {
		it.onClose()
	}
	return nil
}

// closeCommon shuts down the flush loop and persists what remains.
func (b *base) closeCommon() error {
	if b.closed.Swap(true) {
		return nil
	}
	close(b.closing)
	b.wg.Wait()

	firstErr := b.loadFlushErr()
	if firstErr == nil {
		if b.imm != nil {
			if err := b.flushHandle(b.imm); err != nil {
				firstErr = err
			}
			b.imm = nil
		}
		if b.mem.mem.Len() > 0 && firstErr == nil {
			newLog := b.mem.walNum + 1
			if b.cfg.DisableWAL {
				newLog = b.store.NewFileNum()
			}
			if _, err := b.store.Flush(b.mem.mem.NewIterator(), newLog, b.lastSeq); err != nil {
				firstErr = err
			} else if b.mem.wal != nil {
				os.Remove(storage.WALFileName(b.cfg.Dir, b.mem.walNum))
			}
		}
	}
	if b.mem.wal != nil {
		if err := b.mem.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := b.store.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// WaitDiskQuiesce blocks until the pending flush and all compactions
// settle (experiment setup, §5.2).
func (b *base) WaitDiskQuiesce() {
	for {
		b.mu.Lock()
		busy := b.imm != nil
		b.mu.Unlock()
		if !busy {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.store.WaitForCompactions()
}

// Stats reports shared counters.
func (b *base) Stats() kv.Stats {
	s := kv.Stats{
		Puts:      b.stats.puts.Load(),
		Gets:      b.stats.gets.Load(),
		Deletes:   b.stats.deletes.Load(),
		Scans:     b.stats.scans.Load(),
		Batches:   b.stats.batches.Load(),
		BatchOps:  b.stats.batchOps.Load(),
		Iterators: b.stats.iterators.Load(),
	}
	m := b.store.Metrics()
	s.Flushes = m.Flushes
	s.Compactions = m.Compactions
	return s
}

// ErrClosedBaseline is returned by operations on a closed baseline store.
var ErrClosedBaseline = fmt.Errorf("baseline: store closed")
