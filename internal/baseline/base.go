package baseline

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/diskenv"
	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/storage"
	"flodb/internal/wal"
)

// MemKind selects the memtable structure (§2.3: sorted vs unsorted).
type MemKind int

const (
	// MemSkiplist is the default sorted memtable.
	MemSkiplist MemKind = iota
	// MemHash is RocksDB's hash-based memtable (Figs 3–4).
	MemHash
)

// Config parameterizes a baseline store.
type Config struct {
	Dir string
	// MemBytes is the memtable size that triggers a flush (the whole
	// memory component — baselines have a single in-memory level).
	MemBytes int64
	// MemKind selects skiplist or hash memtable.
	MemKind MemKind
	// DisableWAL / SyncWAL as in FloDB.
	DisableWAL bool
	SyncWAL    bool
	// PersistLimiter models a slower disk (shared with FloDB benches).
	PersistLimiter *diskenv.Limiter
	// Storage configures the shared disk component.
	Storage storage.Options
}

func (c *Config) fillDefaults() error {
	if c.Dir == "" {
		return fmt.Errorf("baseline: Config.Dir is required")
	}
	if c.MemBytes <= 0 {
		c.MemBytes = 64 << 20
	}
	return nil
}

// memHandle pairs a memtable with its WAL generation.
type memHandle struct {
	mem    versionedMem
	wal    *wal.Writer
	walNum uint64
}

// base carries the machinery shared by the four variants: versioned
// memtables, WAL handling, flush scheduling, snapshot reads and scans.
// Locking POLICY lives in the variants; base only supplies mechanism.
type base struct {
	cfg   Config
	store *storage.Store

	// mu guards the handles and lastSeq. The variants ALSO use it as
	// their "global mutex" where their design has one, which is exactly
	// the contention the paper measures.
	mu      sync.Mutex
	mem     *memHandle
	imm     *memHandle
	immCond *sync.Cond // waits for imm to clear (writer stall, §2.3)
	lastSeq uint64

	flushCh  chan struct{}
	closing  chan struct{}
	closed   atomic.Bool
	wg       sync.WaitGroup
	flushErr atomic.Pointer[error]

	stats struct {
		puts, gets, deletes, scans atomic.Uint64
	}
}

func (b *base) init(cfg Config) error {
	if err := cfg.fillDefaults(); err != nil {
		return err
	}
	b.cfg = cfg
	store, err := storage.Open(cfg.Dir, cfg.Storage)
	if err != nil {
		return err
	}
	b.store = store
	b.lastSeq = store.LastSeq()
	b.immCond = sync.NewCond(&b.mu)
	b.flushCh = make(chan struct{}, 1)
	b.closing = make(chan struct{})

	if err := b.recoverWALs(); err != nil {
		store.Close()
		return err
	}
	h, err := b.newMemHandle()
	if err != nil {
		store.Close()
		return err
	}
	b.mem = h
	if !cfg.DisableWAL {
		if err := store.SetLogNum(h.walNum, b.lastSeq); err != nil {
			store.Close()
			return err
		}
	}
	b.wg.Add(1)
	go b.flushLoop()
	return nil
}

func (b *base) newVersionedMem() versionedMem {
	if b.cfg.MemKind == MemHash {
		return newHashMem()
	}
	return newSkipMem()
}

func (b *base) newMemHandle() (*memHandle, error) {
	h := &memHandle{mem: b.newVersionedMem()}
	if b.cfg.DisableWAL {
		return h, nil
	}
	h.walNum = b.store.NewFileNum()
	w, err := wal.Create(storage.WALFileName(b.cfg.Dir, h.walNum), wal.Options{SyncEvery: b.cfg.SyncWAL})
	if err != nil {
		return nil, err
	}
	h.wal = w
	return h, nil
}

func (b *base) recoverWALs() error {
	if b.cfg.DisableWAL {
		return nil
	}
	logNum := b.store.LogNum()
	entries, err := os.ReadDir(b.cfg.Dir)
	if err != nil {
		return err
	}
	var segs []uint64
	for _, ent := range entries {
		kind, num := storage.ParseFileName(ent.Name())
		if kind == storage.KindWAL && num >= logNum {
			segs = append(segs, num)
		}
	}
	for i := 0; i < len(segs); i++ { // insertion-sort: few segments
		for j := i; j > 0 && segs[j] < segs[j-1]; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
	for _, num := range segs {
		mem := b.newVersionedMem()
		err := wal.ReplayAll(storage.WALFileName(b.cfg.Dir, num), func(rec []byte) error {
			kind, key, value, err := kv.DecodeRecord(rec)
			if err != nil {
				return err
			}
			b.lastSeq++
			mem.Insert(keys.Clone(key), b.lastSeq, kind, keys.Clone(value))
			return nil
		})
		if err != nil {
			return fmt.Errorf("baseline: replay wal %d: %w", num, err)
		}
		if mem.Len() > 0 {
			if _, err := b.store.Flush(mem.NewIterator(), num+1, b.lastSeq); err != nil {
				return err
			}
		}
		os.Remove(storage.WALFileName(b.cfg.Dir, num))
	}
	return nil
}

// --- Write-side mechanism -----------------------------------------------------

// insertLocked assigns a sequence number and inserts into the current
// memtable, logging first. Caller holds mu; the actual memtable insert
// happens under mu (used by the LevelDB write leader).
func (b *base) insertLocked(kind keys.Kind, key, value []byte) error {
	if err := b.logRecord(b.mem, kind, key, value); err != nil {
		return err
	}
	b.lastSeq++
	b.mem.mem.Insert(key, b.lastSeq, kind, value)
	b.maybeScheduleFlushLocked()
	return nil
}

// beginConcurrentInsert allocates a sequence number and returns the target
// handle under mu; the caller inserts outside the lock (HyperLevelDB /
// RocksDB / cLSM styles). waitRoomLocked must have been honored.
func (b *base) beginConcurrentInsertLocked() (*memHandle, uint64) {
	b.lastSeq++
	return b.mem, b.lastSeq
}

func (b *base) logRecord(h *memHandle, kind keys.Kind, key, value []byte) error {
	if h.wal == nil {
		return nil
	}
	return h.wal.Append(kv.EncodeRecord(kind, key, value))
}

// waitRoomLocked blocks (on mu) while the memtable is full and the
// previous one is still flushing — the writer delay of §2.3.
func (b *base) waitRoomLocked() error {
	for b.mem.mem.ApproxBytes() >= b.cfg.MemBytes && b.imm != nil {
		if err := b.loadFlushErr(); err != nil {
			return err
		}
		b.immCond.Wait()
	}
	if b.mem.mem.ApproxBytes() >= b.cfg.MemBytes && b.imm == nil {
		return b.switchMemLocked()
	}
	return nil
}

// switchMemLocked seals the current memtable and installs a fresh one.
func (b *base) switchMemLocked() error {
	h, err := b.newMemHandle()
	if err != nil {
		return err
	}
	b.imm = b.mem
	b.mem = h
	select {
	case b.flushCh <- struct{}{}:
	default:
	}
	return nil
}

func (b *base) maybeScheduleFlushLocked() {
	if b.mem.mem.ApproxBytes() >= b.cfg.MemBytes && b.imm == nil {
		// Ignore the error here; the next write surfaces it.
		_ = b.switchMemLocked()
	}
}

func (b *base) flushLoop() {
	defer b.wg.Done()
	for {
		select {
		case <-b.closing:
			return
		case <-b.flushCh:
		}
		b.mu.Lock()
		imm := b.imm
		b.mu.Unlock()
		if imm == nil {
			continue
		}
		if err := b.flushHandle(imm); err != nil {
			b.setFlushErr(err)
			return
		}
		b.mu.Lock()
		b.imm = nil
		b.immCond.Broadcast()
		b.mu.Unlock()
	}
}

// flushHandle persists one sealed memtable. For the hash memtable,
// NewIterator performs the full sort (§2.3) — while it runs, writers that
// fill the new memtable stall in waitRoomLocked, reproducing Fig 4.
func (b *base) flushHandle(h *memHandle) error {
	b.cfg.PersistLimiter.Acquire(h.mem.ApproxBytes())
	b.mu.Lock()
	newLog := b.mem.walNum
	lastSeq := b.lastSeq
	b.mu.Unlock()
	if b.cfg.DisableWAL {
		newLog = b.store.NewFileNum()
	}
	if _, err := b.store.Flush(h.mem.NewIterator(), newLog, lastSeq); err != nil {
		return err
	}
	if h.wal != nil {
		h.wal.Close()
		os.Remove(storage.WALFileName(b.cfg.Dir, h.walNum))
	}
	return nil
}

func (b *base) loadFlushErr() error {
	if p := b.flushErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (b *base) setFlushErr(err error) {
	if err != nil {
		b.flushErr.CompareAndSwap(nil, &err)
		b.mu.Lock()
		b.immCond.Broadcast()
		b.mu.Unlock()
	}
}

// --- Read-side mechanism -------------------------------------------------------

// snapshotLocked captures the read view under mu.
func (b *base) snapshotLocked() (mem, imm *memHandle, snap uint64) {
	return b.mem, b.imm, b.lastSeq
}

// getFrom resolves a read against a captured view.
func (b *base) getFrom(mem, imm *memHandle, snap uint64, key []byte) ([]byte, bool, error) {
	if v, _, kind, ok := mem.mem.Get(key, snap); ok {
		if kind == keys.KindDelete {
			return nil, false, nil
		}
		return v, true, nil
	}
	if imm != nil {
		if v, _, kind, ok := imm.mem.Get(key, snap); ok {
			if kind == keys.KindDelete {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	v, _, kind, ok, err := b.store.Get(key)
	if err != nil {
		return nil, false, err
	}
	if !ok || kind == keys.KindDelete {
		return nil, false, nil
	}
	return v, true, nil
}

// scanFrom produces a consistent snapshot scan at snap. Multi-versioning
// makes this conflict-free: versions newer than snap are simply skipped —
// the approach whose memory cost §3.2 criticizes, but which needs no
// restarts.
func (b *base) scanFrom(mem, imm *memHandle, snap uint64, low, high []byte) ([]kv.Pair, error) {
	its := []storage.InternalIterator{mem.mem.NewIterator()}
	if imm != nil {
		its = append(its, imm.mem.NewIterator())
	}
	dit, release, err := b.store.NewIterator()
	if err != nil {
		return nil, err
	}
	defer release()
	its = append(its, dit)
	m := storage.NewMergingIterator(its...)

	var out []kv.Pair
	var lastKey []byte
	haveLast := false
	for m.Seek(low); m.Valid(); m.Next() {
		k := m.Key()
		if high != nil && keys.Compare(k, high) >= 0 {
			break
		}
		if m.Seq() > snap {
			continue // newer than the snapshot: invisible
		}
		if haveLast && keys.Equal(lastKey, k) {
			continue
		}
		lastKey = append(lastKey[:0], k...)
		haveLast = true
		if m.Kind() == keys.KindDelete {
			continue
		}
		out = append(out, kv.Pair{Key: keys.Clone(k), Value: keys.Clone(m.Value())})
	}
	if err := m.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// closeCommon shuts down the flush loop and persists what remains.
func (b *base) closeCommon() error {
	if b.closed.Swap(true) {
		return nil
	}
	close(b.closing)
	b.wg.Wait()

	firstErr := b.loadFlushErr()
	if firstErr == nil {
		if b.imm != nil {
			if err := b.flushHandle(b.imm); err != nil {
				firstErr = err
			}
			b.imm = nil
		}
		if b.mem.mem.Len() > 0 && firstErr == nil {
			newLog := b.mem.walNum + 1
			if b.cfg.DisableWAL {
				newLog = b.store.NewFileNum()
			}
			if _, err := b.store.Flush(b.mem.mem.NewIterator(), newLog, b.lastSeq); err != nil {
				firstErr = err
			} else if b.mem.wal != nil {
				os.Remove(storage.WALFileName(b.cfg.Dir, b.mem.walNum))
			}
		}
	}
	if b.mem.wal != nil {
		if err := b.mem.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := b.store.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// WaitDiskQuiesce blocks until the pending flush and all compactions
// settle (experiment setup, §5.2).
func (b *base) WaitDiskQuiesce() {
	for {
		b.mu.Lock()
		busy := b.imm != nil
		b.mu.Unlock()
		if !busy {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.store.WaitForCompactions()
}

// Stats reports shared counters.
func (b *base) Stats() kv.Stats {
	s := kv.Stats{
		Puts:    b.stats.puts.Load(),
		Gets:    b.stats.gets.Load(),
		Deletes: b.stats.deletes.Load(),
		Scans:   b.stats.scans.Load(),
	}
	m := b.store.Metrics()
	s.Flushes = m.Flushes
	s.Compactions = m.Compactions
	return s
}

// ErrClosedBaseline is returned by operations on a closed baseline store.
var ErrClosedBaseline = fmt.Errorf("baseline: store closed")
