package baseline

import (
	"context"
	"sync"
	"sync/atomic"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/wal"
)

// CLSM models the cLSM algorithm as integrated into RocksDB
// ("RocksDB/cLSM" in the paper's figures). Per §2.2/§6: "cLSM replaces the
// global mutex lock with a global reader-writer lock and uses a concurrent
// memory component. Thus, operations can proceed in parallel, but need to
// block at the start and end of each concurrent compaction", and it
// removes "any blocking synchronization from the read-only path".
//
//   - Gets and Scans: lock-free view capture (atomic pointer + atomic
//     sequence counter), no global lock at all.
//   - Puts: take the read side of the global RWMutex; proceed in parallel.
//   - Memtable switch (start of a memory-to-disk compaction): takes the
//     write side, blocking all writers — the bottleneck the paper notes
//     ("system scalability is still impaired by the use of global
//     shared-exclusive locks to coordinate between updates and background
//     disk writes").
type CLSM struct {
	base
	rw sync.RWMutex
	// view is the lock-free read snapshot, replaced under rw's write side.
	view atomic.Pointer[clsmView]
	// seq is allocated atomically (no lock on the write path beyond rw's
	// read side).
	seq atomic.Uint64
}

type clsmView struct {
	mem *memHandle
	imm *memHandle
}

// NewCLSM opens a RocksDB/cLSM-style store.
func NewCLSM(cfg Config) (*CLSM, error) {
	if cfg.Storage.CompactionThreads == 0 {
		cfg.Storage.CompactionThreads = 3
	}
	db := &CLSM{}
	if err := db.init(cfg); err != nil {
		return nil, err
	}
	db.seq.Store(db.lastSeq)
	db.view.Store(&clsmView{mem: db.mem})
	return db, nil
}

func (db *CLSM) write(ctx context.Context, kind keys.Kind, key, value []byte, opts []kv.WriteOption) error {
	if db.closed.Load() {
		return ErrClosedBaseline
	}
	if err := db.loadFlushErr(); err != nil {
		return err
	}
	d, err := db.resolveDurability(opts)
	if err != nil {
		return err
	}
	for {
		// The switchOrWait loop can block behind a slow flush; every lap
		// is a cancellation point.
		if err := ctx.Err(); err != nil {
			return err
		}
		db.rw.RLock()
		v := db.view.Load()
		if v.mem.mem.ApproxBytes() >= db.cfg.MemBytes {
			db.rw.RUnlock()
			if err := db.switchOrWait(); err != nil {
				return err
			}
			continue
		}
		var w *wal.Writer
		var off int64
		if d != kv.DurabilityNone {
			if w, off, err = db.logRecord(v.mem, kind, key, value); err != nil {
				db.rw.RUnlock()
				return err
			}
		}
		seq := db.seq.Add(1)
		v.mem.mem.Insert(key, seq, kind, value)
		db.rw.RUnlock()
		// Group commit outside the RW lock: sync committers coalesce in
		// the commit queue instead of holding cLSM's writer side hostage
		// to the disk barrier.
		if d == kv.DurabilitySync {
			return db.commitSync(w, off)
		}
		return nil
	}
}

// switchOrWait seals the full memtable under the write lock (blocking all
// writers — cLSM's coordination point with background disk writes), or
// waits for the in-flight flush when one is already running.
func (db *CLSM) switchOrWait() error {
	db.rw.Lock()
	defer db.rw.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.loadFlushErr(); err != nil {
		return err
	}
	if db.mem.mem.ApproxBytes() < db.cfg.MemBytes {
		return nil // another writer already switched
	}
	for db.imm != nil {
		db.immCond.Wait()
		if err := db.loadFlushErr(); err != nil {
			return err
		}
	}
	db.lastSeq = db.seq.Load() // publish for the flush edit
	if err := db.switchMemLocked(); err != nil {
		return err
	}
	db.view.Store(&clsmView{mem: db.mem, imm: db.imm})
	return nil
}

// Put proceeds under the read side of the global RW lock.
func (db *CLSM) Put(ctx context.Context, key, value []byte, opts ...kv.WriteOption) error {
	db.stats.puts.Add(1)
	return db.write(ctx, keys.KindSet, key, value, opts)
}

// Delete writes a tombstone version.
func (db *CLSM) Delete(ctx context.Context, key []byte, opts ...kv.WriteOption) error {
	db.stats.deletes.Add(1)
	return db.write(ctx, keys.KindDelete, key, nil, opts)
}

// Get is lock-free: atomic view capture, atomic snapshot sequence.
func (db *CLSM) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if db.closed.Load() {
		return nil, false, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	db.stats.gets.Add(1)
	v := db.view.Load()
	snap := db.seq.Load()
	val, ok, err := db.getFrom(v.mem, v.imm, nil, snap, key)
	if err != nil || !ok {
		return nil, false, err
	}
	return keys.Clone(val), true, nil
}

// Scan is lock-free on the read path, snapshot-consistent via seq.
func (db *CLSM) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.scans.Add(1)
	v := db.view.Load()
	snap := db.seq.Load()
	return db.scanFrom(ctx, v.mem, v.imm, snap, low, high)
}

// NewIterator streams a pinned snapshot captured lock-free, like Get and
// Scan — no global lock on cLSM's read-only path.
func (db *CLSM) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.iterators.Add(1)
	v := db.view.Load()
	snap := db.seq.Load()
	return db.newSnapshotIter(ctx, v.mem, v.imm, nil, snap, low, high, nil)
}

// Snapshot pins a repeatable-read view. Unlike the lock-free point-read
// path, the capture takes the write side of the global RW lock: writers
// allocate AND insert under the read side, so with the write side held no
// insert with seq <= the bound is still in flight — a lock-free capture
// could pin a sequence whose key pops into existence later, breaking the
// handle's repeatable-read contract. (This matches cLSM's design, which
// reserves the exclusive side for coordination points.)
func (db *CLSM) Snapshot(ctx context.Context) (kv.View, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.rw.Lock()
	v := db.view.Load()
	snap := db.seq.Load()
	db.rw.Unlock()
	return db.newSnapshot(v.mem, v.imm, snap), nil
}

// Apply commits the batch under the read side of the global RW lock: the
// single WAL append makes recovery all-or-nothing, one contiguous
// sequence range orders its versions, and the write lock (taken only by
// memtable switches) guarantees the whole batch lands in one memtable
// generation.
//
// Visibility is weaker than the mutex-ordered baselines, faithfully to
// cLSM's design: the read path is lock-free (view pointer + seq counter,
// no lock at all), so a reader that captures its snapshot while the
// batch's inserts are in flight can observe a prefix of the batch. The
// mutex baselines allocate sequences and capture snapshots under one
// lock and never show partial batches. cLSM also shares write()'s
// pre-existing caveat that WAL append order and sequence order are not
// atomic across concurrent writers, so recovery's replay order may
// resolve a same-key race differently than pre-crash readers saw.
func (db *CLSM) Apply(ctx context.Context, b *kv.Batch, opts ...kv.WriteOption) error {
	if db.closed.Load() {
		return ErrClosedBaseline
	}
	if err := db.loadFlushErr(); err != nil {
		return err
	}
	d, err := db.resolveDurability(opts)
	if err != nil {
		return err
	}
	if b == nil || b.Len() == 0 {
		return nil
	}
	db.stats.batches.Add(1)
	db.stats.batchOps.Add(uint64(b.Len()))
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		db.rw.RLock()
		v := db.view.Load()
		if v.mem.mem.ApproxBytes() >= db.cfg.MemBytes {
			db.rw.RUnlock()
			if err := db.switchOrWait(); err != nil {
				return err
			}
			continue
		}
		var w *wal.Writer
		var off int64
		if d != kv.DurabilityNone && v.mem.wal != nil {
			if off, err = v.mem.wal.Append(kv.EncodeBatchRecord(b)); err != nil {
				db.rw.RUnlock()
				return err
			}
			w = v.mem.wal
		}
		// One contiguous range, reserved up front: a reader whose
		// snapshot predates the batch (snap < start) sees none of it.
		ops := b.Ops()
		end := db.seq.Add(uint64(len(ops)))
		start := end - uint64(len(ops)) + 1
		for i, op := range ops {
			v.mem.mem.Insert(op.Key, start+uint64(i), op.Kind, op.Value)
		}
		db.rw.RUnlock()
		// One group-committed barrier for the whole batch, outside the
		// RW lock.
		if d == kv.DurabilitySync {
			return db.commitSync(w, off)
		}
		return nil
	}
}

// Close flushes and shuts down.
func (db *CLSM) Close() error {
	db.mu.Lock()
	db.lastSeq = db.seq.Load()
	db.mu.Unlock()
	return db.closeCommon()
}

var _ kv.Store = (*CLSM)(nil)
