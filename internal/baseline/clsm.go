package baseline

import (
	"sync"
	"sync/atomic"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// CLSM models the cLSM algorithm as integrated into RocksDB
// ("RocksDB/cLSM" in the paper's figures). Per §2.2/§6: "cLSM replaces the
// global mutex lock with a global reader-writer lock and uses a concurrent
// memory component. Thus, operations can proceed in parallel, but need to
// block at the start and end of each concurrent compaction", and it
// removes "any blocking synchronization from the read-only path".
//
//   - Gets and Scans: lock-free view capture (atomic pointer + atomic
//     sequence counter), no global lock at all.
//   - Puts: take the read side of the global RWMutex; proceed in parallel.
//   - Memtable switch (start of a memory-to-disk compaction): takes the
//     write side, blocking all writers — the bottleneck the paper notes
//     ("system scalability is still impaired by the use of global
//     shared-exclusive locks to coordinate between updates and background
//     disk writes").
type CLSM struct {
	base
	rw sync.RWMutex
	// view is the lock-free read snapshot, replaced under rw's write side.
	view atomic.Pointer[clsmView]
	// seq is allocated atomically (no lock on the write path beyond rw's
	// read side).
	seq atomic.Uint64
}

type clsmView struct {
	mem *memHandle
	imm *memHandle
}

// NewCLSM opens a RocksDB/cLSM-style store.
func NewCLSM(cfg Config) (*CLSM, error) {
	if cfg.Storage.CompactionThreads == 0 {
		cfg.Storage.CompactionThreads = 3
	}
	db := &CLSM{}
	if err := db.init(cfg); err != nil {
		return nil, err
	}
	db.seq.Store(db.lastSeq)
	db.view.Store(&clsmView{mem: db.mem})
	return db, nil
}

func (db *CLSM) write(kind keys.Kind, key, value []byte) error {
	if db.closed.Load() {
		return ErrClosedBaseline
	}
	if err := db.loadFlushErr(); err != nil {
		return err
	}
	for {
		db.rw.RLock()
		v := db.view.Load()
		if v.mem.mem.ApproxBytes() >= db.cfg.MemBytes {
			db.rw.RUnlock()
			if err := db.switchOrWait(); err != nil {
				return err
			}
			continue
		}
		if err := db.logRecord(v.mem, kind, key, value); err != nil {
			db.rw.RUnlock()
			return err
		}
		seq := db.seq.Add(1)
		v.mem.mem.Insert(key, seq, kind, value)
		db.rw.RUnlock()
		return nil
	}
}

// switchOrWait seals the full memtable under the write lock (blocking all
// writers — cLSM's coordination point with background disk writes), or
// waits for the in-flight flush when one is already running.
func (db *CLSM) switchOrWait() error {
	db.rw.Lock()
	defer db.rw.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.loadFlushErr(); err != nil {
		return err
	}
	if db.mem.mem.ApproxBytes() < db.cfg.MemBytes {
		return nil // another writer already switched
	}
	for db.imm != nil {
		db.immCond.Wait()
		if err := db.loadFlushErr(); err != nil {
			return err
		}
	}
	db.lastSeq = db.seq.Load() // publish for the flush edit
	if err := db.switchMemLocked(); err != nil {
		return err
	}
	db.view.Store(&clsmView{mem: db.mem, imm: db.imm})
	return nil
}

// Put proceeds under the read side of the global RW lock.
func (db *CLSM) Put(key, value []byte) error {
	db.stats.puts.Add(1)
	return db.write(keys.KindSet, key, value)
}

// Delete writes a tombstone version.
func (db *CLSM) Delete(key []byte) error {
	db.stats.deletes.Add(1)
	return db.write(keys.KindDelete, key, nil)
}

// Get is lock-free: atomic view capture, atomic snapshot sequence.
func (db *CLSM) Get(key []byte) ([]byte, bool, error) {
	if db.closed.Load() {
		return nil, false, ErrClosedBaseline
	}
	db.stats.gets.Add(1)
	v := db.view.Load()
	snap := db.seq.Load()
	val, ok, err := db.getFrom(v.mem, v.imm, snap, key)
	if err != nil || !ok {
		return nil, false, err
	}
	return keys.Clone(val), true, nil
}

// Scan is lock-free on the read path, snapshot-consistent via seq.
func (db *CLSM) Scan(low, high []byte) ([]kv.Pair, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	db.stats.scans.Add(1)
	v := db.view.Load()
	snap := db.seq.Load()
	return db.scanFrom(v.mem, v.imm, snap, low, high)
}

// Close flushes and shuts down.
func (db *CLSM) Close() error {
	db.mu.Lock()
	db.lastSeq = db.seq.Load()
	db.mu.Unlock()
	return db.closeCommon()
}

var _ kv.Store = (*CLSM)(nil)
