package baseline

import (
	"context"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/wal"
)

// LevelDB models Google's LevelDB concurrency design (§2.2):
//
//   - Writers do not touch the memtable themselves: they "deposit their
//     intended writes in a concurrent queue; the writes in this queue are
//     applied to the key-value store one by one by a single thread" — the
//     write leader, which combines queued updates per mutex acquisition
//     (flat combining [28]).
//   - Readers "take a global lock during each operation so as to access or
//     update metadata": one critical section at the start and one at the
//     end of every Get and Scan.
//   - Compaction is single-threaded.
type LevelDB struct {
	base
	writeCh  chan *writeReq
	writerWg chanWaiter
}

type writeReq struct {
	kind       keys.Kind
	key        []byte
	value      []byte
	durability kv.Durability
	done       chan error
}

// chanWaiter is a tiny one-goroutine waitgroup (avoids embedding another
// sync.WaitGroup next to base.wg).
type chanWaiter struct{ ch chan struct{} }

func (w *chanWaiter) start() { w.ch = make(chan struct{}) }
func (w *chanWaiter) done()  { close(w.ch) }
func (w *chanWaiter) wait()  { <-w.ch }

// writeLeaderBatch bounds how many queued writes one leader pass applies.
const writeLeaderBatch = 128

// NewLevelDB opens a LevelDB-style store.
func NewLevelDB(cfg Config) (*LevelDB, error) {
	if cfg.Storage.CompactionThreads == 0 {
		cfg.Storage.CompactionThreads = 1
	}
	db := &LevelDB{writeCh: make(chan *writeReq, 4096)}
	if err := db.init(cfg); err != nil {
		return nil, err
	}
	db.writerWg.start()
	go db.writeLeader()
	return db, nil
}

// pendingSync is a combined-pass write awaiting its group-committed
// fsync: the leader acks it only after the barrier covers its record.
type pendingSync struct {
	req *writeReq
	w   *wal.Writer
	off int64
}

// writeLeader drains the queue, applying writes sequentially under the
// global mutex — the single-writer bottleneck of Fig 9. Sync-class writes
// get LevelDB's natural group commit: the whole combined pass shares ONE
// fsync, issued after the mutex is released, and only then are the
// sync writers acknowledged (buffered writers were acked under the lock).
func (db *LevelDB) writeLeader() {
	defer db.writerWg.done()
	var batch []*writeReq
	var pending []*pendingSync
	for {
		select {
		case <-db.closing:
			// Serve stragglers so Put never hangs on shutdown.
			for {
				select {
				case req := <-db.writeCh:
					req.done <- ErrClosedBaseline
				default:
					return
				}
			}
		case req := <-db.writeCh:
			batch = append(batch[:0], req)
			// Combine whatever else is queued right now.
		drain:
			for len(batch) < writeLeaderBatch {
				select {
				case r := <-db.writeCh:
					batch = append(batch, r)
				default:
					break drain
				}
			}
			pending = pending[:0]
			db.mu.Lock()
			for _, r := range batch {
				err := db.waitRoomLocked()
				var w *wal.Writer
				var off int64
				if err == nil {
					w, off, err = db.insertLocked(r.kind, r.key, r.value, r.durability != kv.DurabilityNone)
				}
				if err == nil && r.durability == kv.DurabilitySync && w != nil {
					pending = append(pending, &pendingSync{req: r, w: w, off: off})
					continue // acked after the shared barrier
				}
				r.done <- err
			}
			db.mu.Unlock()
			// One barrier per segment the pass touched (normally one; a
			// memtable switch mid-pass adds a second). commitSync's fast
			// path makes the later laps free.
			for _, p := range pending {
				p.req.done <- db.commitSync(p.w, p.off)
			}
		}
	}
}

func (db *LevelDB) write(ctx context.Context, kind keys.Kind, key, value []byte, opts []kv.WriteOption) error {
	if db.closed.Load() {
		return ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := db.loadFlushErr(); err != nil {
		return err
	}
	d, err := db.resolveDurability(opts)
	if err != nil {
		return err
	}
	req := &writeReq{kind: kind, key: key, value: value, durability: d, done: make(chan error, 1)}
	select {
	case db.writeCh <- req:
	case <-db.closing:
		return ErrClosedBaseline
	case <-ctx.Done():
		return ctx.Err()
	}
	// Cancellation here abandons the wait, not the write: the leader may
	// still apply the queued update. Context errors mean "the caller
	// stopped waiting", never "the operation did not happen".
	select {
	case err := <-req.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Put queues the update for the write leader.
func (db *LevelDB) Put(ctx context.Context, key, value []byte, opts ...kv.WriteOption) error {
	db.stats.puts.Add(1)
	return db.write(ctx, keys.KindSet, key, value, opts)
}

// Delete queues a tombstone.
func (db *LevelDB) Delete(ctx context.Context, key []byte, opts ...kv.WriteOption) error {
	db.stats.deletes.Add(1)
	return db.write(ctx, keys.KindDelete, key, nil, opts)
}

// Get takes the global mutex at the start (to capture the view) and again
// at the end (LevelDB releases its memtable/version references under the
// lock) — the read-side critical sections of §2.2.
func (db *LevelDB) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if db.closed.Load() {
		return nil, false, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	db.stats.gets.Add(1)
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	v, ok, err := db.getFrom(mem, imm, nil, snap, key)
	db.mu.Lock() // the "end" critical section: unref metadata
	db.mu.Unlock()
	if err != nil || !ok {
		return nil, false, err
	}
	return keys.Clone(v), true, nil
}

// Scan produces a snapshot scan with the same two critical sections.
func (db *LevelDB) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.scans.Add(1)
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	pairs, err := db.scanFrom(ctx, mem, imm, snap, low, high)
	db.mu.Lock()
	db.mu.Unlock()
	return pairs, err
}

// NewIterator streams a pinned snapshot; the closing critical section
// (releasing metadata under the global lock) runs at Close.
func (db *LevelDB) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.iterators.Add(1)
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	return db.newSnapshotIter(ctx, mem, imm, nil, snap, low, high, func() {
		db.mu.Lock()
		db.mu.Unlock()
	})
}

// Snapshot pins a repeatable-read view, captured under the global mutex
// like every LevelDB read.
func (db *LevelDB) Snapshot(ctx context.Context) (kv.View, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	return db.newSnapshot(mem, imm, snap), nil
}

// Apply commits the batch atomically under the global mutex — the same
// single-writer application the leader performs for combined queues.
func (db *LevelDB) Apply(ctx context.Context, b *kv.Batch, opts ...kv.WriteOption) error {
	return db.applyBatch(ctx, b, opts)
}

// Close shuts down the leader and flushes.
func (db *LevelDB) Close() error {
	if db.closed.Load() {
		return nil
	}
	err := db.closeCommon() // closes db.closing, stopping the leader
	db.writerWg.wait()
	return err
}

var _ kv.Store = (*LevelDB)(nil)
