// Package baseline implements the four LSM systems the paper evaluates
// FloDB against — LevelDB, HyperLevelDB, RocksDB, and RocksDB/cLSM — as
// memory-component concurrency-control variants over the same disk
// component (internal/storage). The paper's systems all derive from
// LevelDB and share its disk format, so holding the disk constant isolates
// exactly the axis the paper studies (§2.2).
//
// All four keep LevelDB's multi-versioned memtable: every update appends a
// new (key, seq) version and old versions are discarded only during
// compaction. This is the behaviour §3.2 contrasts with FloDB's in-place
// updates — "continually updating a single key is enough to fill up the
// memory component and trigger frequent flushes to disk" — and it is what
// drives the skew results of Fig 16.
package baseline

import (
	"runtime"
	"sort"
	"sync"

	"flodb/internal/keys"
	"flodb/internal/skiplist"
	"flodb/internal/storage"
)

// versionedMem is a multi-versioned memtable: sorted (skiplist) or
// unsorted (hash table, §2.3 / Fig 4).
type versionedMem interface {
	// Insert appends a version. (key, seq) pairs are unique.
	Insert(ukey []byte, seq uint64, kind keys.Kind, value []byte)
	// Get returns the newest version with seq <= snapshot.
	Get(ukey []byte, snapshot uint64) (value []byte, seq uint64, kind keys.Kind, ok bool)
	// ApproxBytes approximates memory usage including superseded versions.
	ApproxBytes() int64
	// Len counts stored versions.
	Len() int
	// NewIterator yields versions in (ukey asc, seq desc) order. For the
	// hash memtable this requires a full sort — the linearithmic
	// pre-flush step of §2.3.
	NewIterator() storage.InternalIterator
}

// --- Sorted (skiplist) versioned memtable -----------------------------------

// skipMem stores internal keys in the shared lock-free skiplist. Each
// version is a distinct internal key, so inserts never collide.
type skipMem struct {
	list *skiplist.List
}

func newSkipMem() *skipMem {
	return &skipMem{list: skiplist.NewWithComparator(func(a, b []byte) int {
		return keys.CompareInternal(keys.InternalKey(a), keys.InternalKey(b))
	})}
}

func (m *skipMem) Insert(ukey []byte, seq uint64, kind keys.Kind, value []byte) {
	// MakeInternal copies the key; the value must be copied here — the
	// node retains it, and harness drivers reuse their value buffers.
	ik := keys.MakeInternal(ukey, seq, kind)
	m.list.Insert(ik, &skiplist.Entry{Value: keys.Clone(value), Seq: seq, Tombstone: kind == keys.KindDelete})
}

func (m *skipMem) Get(ukey []byte, snapshot uint64) ([]byte, uint64, keys.Kind, bool) {
	it := m.list.NewIterator()
	it.Seek(keys.SeekInternal(ukey, snapshot))
	if !it.Valid() {
		return nil, 0, 0, false
	}
	ik := keys.InternalKey(it.Key())
	if !keys.Equal(ik.UserKey(), ukey) {
		return nil, 0, 0, false
	}
	e := it.Entry()
	return e.Value, ik.Seq(), ik.Kind(), true
}

func (m *skipMem) ApproxBytes() int64 { return m.list.ApproxBytes() }
func (m *skipMem) Len() int           { return m.list.Len() }

func (m *skipMem) NewIterator() storage.InternalIterator {
	return &skipMemIter{it: m.list.NewIterator()}
}

// skipMemIter decodes internal keys into the InternalIterator contract.
type skipMemIter struct {
	it *skiplist.Iterator
}

func (a *skipMemIter) SeekToFirst() { a.it.SeekToFirst() }
func (a *skipMemIter) Seek(ukey []byte) {
	a.it.Seek(keys.SeekInternal(ukey, keys.MaxSeq))
}
func (a *skipMemIter) Next()       { a.it.Next() }
func (a *skipMemIter) Valid() bool { return a.it.Valid() }
func (a *skipMemIter) Key() []byte {
	return keys.InternalKey(a.it.Key()).UserKey()
}
func (a *skipMemIter) Seq() uint64 {
	return keys.InternalKey(a.it.Key()).Seq()
}
func (a *skipMemIter) Kind() keys.Kind {
	return keys.InternalKey(a.it.Key()).Kind()
}
func (a *skipMemIter) Value() []byte { return a.it.Entry().Value }
func (a *skipMemIter) Err() error    { return nil }

// --- Unsorted (hash table) versioned memtable --------------------------------

// hashMem is the RocksDB hash-based memtable of Figs 3–4: O(1) writes, but
// flushing requires sorting every stored version first. The table is
// striped into lock shards sized from GOMAXPROCS — a fixed 64-way array
// serializes writers once core counts pass it.
type hashMem struct {
	shards []hashShard
	mask   uint64
}

// hashMemShards picks the stripe count: 4× GOMAXPROCS rounded up to a
// power of two (the mask needs one), floored at the historical 64 so
// small machines keep their collision behavior, and capped so a
// many-core machine doesn't pay thousands of mostly-empty maps per
// memtable generation.
func hashMemShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	p := 64
	for p < n && p < 4096 {
		p <<= 1
	}
	return p
}

type hashShard struct {
	mu    sync.RWMutex
	m     map[string][]hashVersion
	bytes int64
	count int
}

type hashVersion struct {
	seq   uint64
	kind  keys.Kind
	value []byte
}

func newHashMem() *hashMem {
	n := hashMemShards()
	h := &hashMem{shards: make([]hashShard, n), mask: uint64(n - 1)}
	for i := range h.shards {
		h.shards[i].m = make(map[string][]hashVersion)
	}
	return h
}

func (h *hashMem) shard(ukey []byte) *hashShard {
	var sum uint64 = 14695981039346656037
	for _, c := range ukey {
		sum ^= uint64(c)
		sum *= 1099511628211
	}
	sum ^= sum >> 33
	return &h.shards[sum&h.mask]
}

func (h *hashMem) Insert(ukey []byte, seq uint64, kind keys.Kind, value []byte) {
	s := h.shard(ukey)
	s.mu.Lock()
	// string(ukey) copies the key; clone the value for the same reason as
	// skipMem — callers reuse their buffers.
	s.m[string(ukey)] = append(s.m[string(ukey)], hashVersion{seq: seq, kind: kind, value: keys.Clone(value)})
	s.bytes += int64(len(ukey) + len(value) + 32)
	s.count++
	s.mu.Unlock()
}

func (h *hashMem) Get(ukey []byte, snapshot uint64) ([]byte, uint64, keys.Kind, bool) {
	s := h.shard(ukey)
	s.mu.RLock()
	defer s.mu.RUnlock()
	versions := s.m[string(ukey)]
	// Versions append in seq order; find the newest <= snapshot.
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i].seq <= snapshot {
			v := versions[i]
			return v.value, v.seq, v.kind, true
		}
	}
	return nil, 0, 0, false
}

func (h *hashMem) ApproxBytes() int64 {
	var n int64
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		n += s.bytes
		s.mu.RUnlock()
	}
	return n
}

func (h *hashMem) Len() int {
	n := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		n += s.count
		s.mu.RUnlock()
	}
	return n
}

// NewIterator materializes and sorts the whole table — the expensive
// pre-flush sort of §2.3 ("needs to be sorted in linearithmic time before
// being flushed to disk, potentially delaying writers").
func (h *hashMem) NewIterator() storage.InternalIterator {
	var entries []hashEntry
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		for k, versions := range s.m {
			for _, v := range versions {
				entries = append(entries, hashEntry{ukey: []byte(k), v: v})
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(entries, func(i, j int) bool {
		c := keys.Compare(entries[i].ukey, entries[j].ukey)
		if c != 0 {
			return c < 0
		}
		return entries[i].v.seq > entries[j].v.seq
	})
	return &sortedEntriesIter{entries: entries, i: 0}
}

type hashEntry struct {
	ukey []byte
	v    hashVersion
}

type sortedEntriesIter struct {
	entries []hashEntry
	i       int
}

func (s *sortedEntriesIter) SeekToFirst() { s.i = 0 }
func (s *sortedEntriesIter) Seek(ukey []byte) {
	s.i = sort.Search(len(s.entries), func(i int) bool {
		return keys.Compare(s.entries[i].ukey, ukey) >= 0
	})
}
func (s *sortedEntriesIter) Next()           { s.i++ }
func (s *sortedEntriesIter) Valid() bool     { return s.i < len(s.entries) }
func (s *sortedEntriesIter) Key() []byte     { return s.entries[s.i].ukey }
func (s *sortedEntriesIter) Seq() uint64     { return s.entries[s.i].v.seq }
func (s *sortedEntriesIter) Kind() keys.Kind { return s.entries[s.i].v.kind }
func (s *sortedEntriesIter) Value() []byte   { return s.entries[s.i].v.value }
func (s *sortedEntriesIter) Err() error      { return nil }
