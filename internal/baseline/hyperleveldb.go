package baseline

import (
	"context"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/wal"
)

// HyperLevelDB models HyperDex's LevelDB fork (§2.2, §6): it "replaces
// LevelDB's sequential memory component with a concurrent one, which
// allows writers to apply their updates in parallel", but "writers still
// need to acquire a global mutex lock at the start and end of each
// operation" to order updates through version numbers. That residual
// global lock is its scalability ceiling in Figs 9–13.
type HyperLevelDB struct {
	base
}

// NewHyperLevelDB opens a HyperLevelDB-style store.
func NewHyperLevelDB(cfg Config) (*HyperLevelDB, error) {
	if cfg.Storage.CompactionThreads == 0 {
		cfg.Storage.CompactionThreads = 1
	}
	db := &HyperLevelDB{}
	if err := db.init(cfg); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *HyperLevelDB) write(ctx context.Context, kind keys.Kind, key, value []byte, opts []kv.WriteOption) error {
	if db.closed.Load() {
		return ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := db.loadFlushErr(); err != nil {
		return err
	}
	d, err := db.resolveDurability(opts)
	if err != nil {
		return err
	}
	// Critical section #1: room check, version-number (seq) allocation,
	// commit-log append. The snapshot barrier spans allocation through
	// insert so a Snapshot never pins a sequence still in flight.
	db.snapMu.RLock()
	db.mu.Lock()
	if err := db.waitRoomCtxLocked(ctx); err != nil {
		db.mu.Unlock()
		db.snapMu.RUnlock()
		return err
	}
	var w *wal.Writer
	var off int64
	if d != kv.DurabilityNone {
		if w, off, err = db.logRecord(db.mem, kind, key, value); err != nil {
			db.mu.Unlock()
			db.snapMu.RUnlock()
			return err
		}
	}
	h, seq := db.beginConcurrentInsertLocked()
	db.mu.Unlock()

	// The insert itself proceeds in parallel with other writers.
	h.mem.Insert(key, seq, kind, value)
	db.snapMu.RUnlock()

	// Critical section #2: post-insert bookkeeping (size trigger).
	db.mu.Lock()
	db.maybeScheduleFlushLocked()
	db.mu.Unlock()
	// The fsync wait of a Sync-class write runs outside every lock:
	// concurrent committers coalesce in the WAL's group-commit queue
	// rather than serializing the global mutex behind the disk.
	if d == kv.DurabilitySync {
		return db.commitSync(w, off)
	}
	return nil
}

// Put inserts concurrently between two global critical sections.
func (db *HyperLevelDB) Put(ctx context.Context, key, value []byte, opts ...kv.WriteOption) error {
	db.stats.puts.Add(1)
	return db.write(ctx, keys.KindSet, key, value, opts)
}

// Delete writes a tombstone version.
func (db *HyperLevelDB) Delete(ctx context.Context, key []byte, opts ...kv.WriteOption) error {
	db.stats.deletes.Add(1)
	return db.write(ctx, keys.KindDelete, key, nil, opts)
}

// Get retains LevelDB's read-side critical sections.
func (db *HyperLevelDB) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if db.closed.Load() {
		return nil, false, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	db.stats.gets.Add(1)
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	v, ok, err := db.getFrom(mem, imm, nil, snap, key)
	db.mu.Lock()
	db.mu.Unlock()
	if err != nil || !ok {
		return nil, false, err
	}
	return keys.Clone(v), true, nil
}

// Scan produces a snapshot scan ("HyperLevelDB's efficient compaction"
// keeps its file count low, which is why it does well in Fig 13 — that
// property comes from the shared disk component here).
func (db *HyperLevelDB) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.scans.Add(1)
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	pairs, err := db.scanFrom(ctx, mem, imm, snap, low, high)
	db.mu.Lock()
	db.mu.Unlock()
	return pairs, err
}

// NewIterator streams a pinned snapshot with LevelDB-style start and end
// critical sections.
func (db *HyperLevelDB) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.iterators.Add(1)
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	return db.newSnapshotIter(ctx, mem, imm, nil, snap, low, high, func() {
		db.mu.Lock()
		db.mu.Unlock()
	})
}

// Snapshot pins a repeatable-read view captured under the global mutex,
// behind the snapshot barrier (no insert with seq <= the bound is still
// in flight).
func (db *HyperLevelDB) Snapshot(ctx context.Context) (kv.View, error) {
	if db.closed.Load() {
		return nil, ErrClosedBaseline
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.snapMu.Lock()
	db.mu.Lock()
	mem, imm, snap := db.snapshotLocked()
	db.mu.Unlock()
	db.snapMu.Unlock()
	return db.newSnapshot(mem, imm, snap), nil
}

// Apply commits the batch atomically: version numbers for the whole batch
// are allocated in one critical section.
func (db *HyperLevelDB) Apply(ctx context.Context, b *kv.Batch, opts ...kv.WriteOption) error {
	return db.applyBatch(ctx, b, opts)
}

// Close flushes and shuts down.
func (db *HyperLevelDB) Close() error { return db.closeCommon() }

var _ kv.Store = (*HyperLevelDB)(nil)
