// Package server is flodbd's service tier: it exposes one shared kv.Store
// over the internal/wire protocol to many network clients.
//
// Concurrency model: one reader goroutine per connection decodes frames
// and dispatches EACH request into its own handler goroutine, so
// independent requests pipelined on a single connection execute
// concurrently against the store — the group-commit WAL and the
// Membuffer's parallel write path only pay off when many requests are in
// flight at once. Two backpressure valves bound the fan-out: a
// per-connection in-flight semaphore (the reader stops draining the
// socket when a client pipelines past it, pushing back through TCP) and a
// max-connections cap at accept time.
//
// Server-side state: snapshots and iterators live in a per-connection
// lease table keyed by the handle the open call returned. A janitor
// expires leases idle past Config.LeaseIdle — a client that vanished
// without closing its handles must not pin sstables (or the memory
// version chains a FloDB snapshot bound retains) forever. Expired or
// closed handles answer
// StatusSnapshotReleased, which the client maps back onto
// kv.ErrSnapshotReleased.
//
// Shutdown is a drain, not a guillotine: stop accepting, stop READING
// new requests, let every in-flight request finish and flush its
// response, then close the connections. The store itself is closed by
// the caller (cmd/flodbd) after the drain, so acked Buffered writes get
// the close-time WAL sync the durability contract promises.
package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/obs"
	"flodb/internal/wire"
)

// Config tunes a Server. The zero value of every field gets a sane
// default from New.
type Config struct {
	// Store is the engine every connection shares. Required.
	Store kv.Store
	// Local is the replication plane: the store OpVPut/OpVApply/OpHealth
	// target. It defaults to Store; a coordinator node (flodbd -cluster)
	// splits them — Store is the cluster client ordinary requests fan out
	// through, Local the node's own engine replicas write into.
	Local kv.Store
	// MaxFrame is the frame cap this server offers in the handshake; the
	// connection runs under min(server offer, client offer). Default
	// wire.MaxFrame.
	MaxFrame uint64
	// NodeID and RingEpoch identify this node to health probes. NodeID
	// defaults to empty (callers may fall back to the address); a zero
	// RingEpoch means "not ring-aware" and disables epoch checking.
	NodeID    string
	RingEpoch uint64
	// MaxConns caps concurrent connections; further accepts are closed
	// immediately (and counted in Info().ConnsRejected). Default 1024.
	MaxConns int
	// MaxInFlight caps concurrently executing requests per connection;
	// past it the connection's reader blocks, pushing back through TCP.
	// Default 128.
	MaxInFlight int
	// LeaseIdle is how long an untouched snapshot/iterator lease survives
	// before the janitor releases it. Default 5m.
	LeaseIdle time.Duration
	// SlowRequest is the duration past which a request counts as slow in
	// Info(). Default 1s.
	SlowRequest time.Duration
	// MaxChunkPairs clamps the client-requested pairs per iterator chunk.
	// Default 4096.
	MaxChunkPairs int
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
	// Telemetry, when set, answers OpTelemetry with the node's
	// observability snapshot (store + server merged — the daemon wires
	// it up because only it sees both). Nil answers
	// kv.ErrNotSupported.
	Telemetry func(maxEvents int) wire.TelemetryPayload
}

// Server serves one kv.Store over the wire protocol.
type Server struct {
	cfg Config

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*serverConn]struct{}
	draining  bool
	closed    bool

	reqWG sync.WaitGroup // every in-flight request handler

	// Observability (Info / OpStats).
	connsOpen     atomic.Int64
	connsTotal    atomic.Uint64
	connsRejected atomic.Uint64
	inFlight      atomic.Int64
	bytesIn       atomic.Uint64
	bytesOut      atomic.Uint64
	slowRequests  atomic.Uint64
	leasesExpired atomic.Uint64
	requestsByOp  [wire.OpMax]atomic.Uint64

	// reg carries the service tier's own metrics — request latency
	// histograms per opcode plus views over the connection counters —
	// kept separate from the store's registry so the daemon can merge
	// the two snapshots without name collisions.
	reg   *obs.Registry
	opLat [wire.OpMax]*obs.Histogram

	janitorStop chan struct{}
	janitorOnce sync.Once

	// vlocks stripes the versioned-write plane: OpVPut/OpVApply hold a
	// key's stripe across their read-compare-write so two racing
	// replica writes to one key serialize and newest-wins is exact.
	vlocks [vStripes]sync.Mutex
}

const vStripes = 128

// New builds a Server over cfg.Store.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("server: Config.Store is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 1024
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 128
	}
	if cfg.LeaseIdle <= 0 {
		cfg.LeaseIdle = 5 * time.Minute
	}
	if cfg.SlowRequest <= 0 {
		cfg.SlowRequest = time.Second
	}
	if cfg.MaxChunkPairs <= 0 {
		cfg.MaxChunkPairs = 4096
	}
	if cfg.Local == nil {
		cfg.Local = cfg.Store
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = wire.MaxFrame
	}
	s := &Server{
		cfg:         cfg,
		listeners:   map[net.Listener]struct{}{},
		conns:       map[*serverConn]struct{}{},
		janitorStop: make(chan struct{}),
	}
	s.initObs()
	return s
}

// initObs builds the service tier's metric registry: one latency
// histogram per opcode and scrape-time views over the connection
// counters Info() already reports.
func (s *Server) initObs() {
	reg := obs.NewRegistry()
	s.reg = reg
	for op := wire.Op(1); op < wire.OpMax; op++ {
		s.opLat[op] = reg.Histogram(
			`flodbd_request_seconds{op="`+op.String()+`"}`,
			"Wire request wall time by opcode, decode to response write.")
		op := op
		reg.CounterFunc(`flodbd_requests_total{op="`+op.String()+`"}`,
			"Wire requests received, by opcode.",
			func() uint64 { return s.requestsByOp[op].Load() })
	}
	reg.GaugeFunc("flodbd_conns_open", "Connections currently open.",
		func() int64 { return maxInt64(s.connsOpen.Load(), 0) })
	reg.CounterFunc("flodbd_conns_total", "Connections ever accepted.",
		func() uint64 { return s.connsTotal.Load() })
	reg.CounterFunc("flodbd_conns_rejected_total", "Connections refused at the MaxConns cap.",
		func() uint64 { return s.connsRejected.Load() })
	reg.GaugeFunc("flodbd_requests_in_flight", "Requests currently executing.",
		func() int64 { return maxInt64(s.inFlight.Load(), 0) })
	reg.CounterFunc("flodbd_bytes_in_total", "Request bytes read off the wire.",
		func() uint64 { return s.bytesIn.Load() })
	reg.CounterFunc("flodbd_bytes_out_total", "Response bytes written to the wire.",
		func() uint64 { return s.bytesOut.Load() })
	reg.CounterFunc("flodbd_slow_requests_total", "Requests slower than Config.SlowRequest.",
		func() uint64 { return s.slowRequests.Load() })
	reg.CounterFunc("flodbd_leases_expired_total", "Snapshot/iterator leases expired by the janitor.",
		func() uint64 { return s.leasesExpired.Load() })
}

// TelemetrySnapshot freezes the service tier's registry — merge it with
// the store's snapshot for the full /metrics view.
func (s *Server) TelemetrySnapshot() obs.Snapshot {
	return s.reg.Snapshot()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on l until Shutdown or Close. It returns nil
// on a clean shutdown, or the accept error that stopped it.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return fmt.Errorf("server: already shut down")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	s.janitorOnce.Do(func() { go s.janitor() })

	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.draining || s.closed
			s.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		if int(s.connsOpen.Load()) >= s.cfg.MaxConns {
			s.connsRejected.Add(1)
			nc.Close()
			continue
		}
		c := s.newConn(nc)
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connsOpen.Add(1)
		s.connsTotal.Add(1)
		go c.run()
	}
}

// Shutdown drains the server: listeners close, connections stop reading
// new requests, in-flight requests finish and flush their responses, and
// only then do connections close. If ctx expires first the remaining work
// is cut off (in-flight contexts canceled, connections closed) and ctx's
// error returned. The store is NOT closed — that is the caller's job,
// after the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, c := range conns {
		c.stopReading()
	}

	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.forceClose()
	if err == nil {
		// Connections are closed; drained handlers have flushed.
		<-done
	}
	return err
}

// Close force-stops the server without draining: listeners and
// connections close immediately and in-flight requests are canceled.
// Used by tests modeling a server crash; production paths use Shutdown.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()
	s.forceClose()
}

func (s *Server) forceClose() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.janitorStop)
	for _, c := range conns {
		c.close()
	}
}

func (s *Server) removeConn(c *serverConn) {
	s.mu.Lock()
	_, present := s.conns[c]
	delete(s.conns, c)
	s.mu.Unlock()
	if present {
		s.connsOpen.Add(-1)
	}
}

// janitor expires idle snapshot/iterator leases.
func (s *Server) janitor() {
	tick := time.NewTicker(s.cfg.LeaseIdle / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-s.cfg.LeaseIdle)
		s.mu.Lock()
		conns := make([]*serverConn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			s.leasesExpired.Add(uint64(c.expireLeases(cutoff)))
		}
	}
}

// Info snapshots the server-side observability counters.
func (s *Server) Info() wire.ServerInfo {
	info := wire.ServerInfo{
		ConnsOpen:     uint64(maxInt64(s.connsOpen.Load(), 0)),
		ConnsTotal:    s.connsTotal.Load(),
		ConnsRejected: s.connsRejected.Load(),
		InFlight:      uint64(maxInt64(s.inFlight.Load(), 0)),
		BytesIn:       s.bytesIn.Load(),
		BytesOut:      s.bytesOut.Load(),
		SlowRequests:  s.slowRequests.Load(),
		LeasesExpired: s.leasesExpired.Load(),
		RequestsByOp:  map[string]uint64{},
	}
	for op := wire.Op(1); op < wire.OpMax; op++ {
		if n := s.requestsByOp[op].Load(); n > 0 {
			info.RequestsByOp[op.String()] = n
			info.Requests += n
		}
	}
	return info
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- Connection --------------------------------------------------------------

type lease struct {
	mu       sync.Mutex // serializes iterator positioning vs close/expiry
	snap     kv.View    // snapshot lease (nil for iterators)
	iter     kv.Iterator
	lastUsed time.Time // guarded by serverConn.mu
	busy     bool      // guarded by serverConn.mu: in use by a handler, janitor must skip
}

type serverConn struct {
	srv *Server
	nc  net.Conn

	wmu sync.Mutex // serializes response frames

	sem chan struct{} // in-flight tokens

	mu         sync.Mutex
	leases     map[uint64]*lease
	inflight   map[uint64]context.CancelFunc
	nextHandle uint64
	closed     bool

	connWG sync.WaitGroup // this connection's in-flight handlers

	// maxFrame is the cap negotiated in the handshake (min of the two
	// offers); reads and responses on this connection stay under it.
	maxFrame uint64

	// baseCtx outlives individual requests (iterators opened through one
	// request are positioned by later ones); canceled when the conn dies.
	baseCtx context.Context
	cancel  context.CancelFunc
}

func (s *Server) newConn(nc net.Conn) *serverConn {
	ctx, cancel := context.WithCancel(context.Background())
	return &serverConn{
		srv:      s,
		nc:       nc,
		sem:      make(chan struct{}, s.cfg.MaxInFlight),
		leases:   map[uint64]*lease{},
		inflight: map[uint64]context.CancelFunc{},
		baseCtx:  ctx,
		cancel:   cancel,
	}
}

// stopReading makes the reader loop return without killing in-flight
// requests: the drain half of Shutdown.
func (c *serverConn) stopReading() {
	c.nc.SetReadDeadline(time.Now())
}

// close tears the connection down: cancels in-flight requests, releases
// leases, closes the socket.
func (c *serverConn) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	cancels := make([]context.CancelFunc, 0, len(c.inflight))
	for _, cf := range c.inflight {
		cancels = append(cancels, cf)
	}
	leases := make([]*lease, 0, len(c.leases))
	for _, l := range c.leases {
		leases = append(leases, l)
	}
	c.leases = map[uint64]*lease{}
	c.mu.Unlock()

	c.cancel()
	for _, cf := range cancels {
		cf()
	}
	c.nc.Close()
	// Handlers may still be running; leases close under their own mutex
	// so an in-flight positioning call finishes before the iterator dies.
	for _, l := range leases {
		releaseLease(l)
	}
	c.srv.removeConn(c)
}

func releaseLease(l *lease) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.iter != nil {
		l.iter.Close()
		l.iter = nil
	}
	if l.snap != nil {
		l.snap.Close()
		l.snap = nil
	}
}

// expireLeases releases leases untouched since cutoff, returning how many.
func (c *serverConn) expireLeases(cutoff time.Time) int {
	c.mu.Lock()
	var victims []*lease
	for h, l := range c.leases {
		if !l.busy && l.lastUsed.Before(cutoff) {
			victims = append(victims, l)
			delete(c.leases, h)
		}
	}
	c.mu.Unlock()
	for _, l := range victims {
		releaseLease(l)
	}
	return len(victims)
}

// run is the reader loop: frame -> request -> handler goroutine.
func (c *serverConn) run() {
	defer func() {
		// Drain path: the read deadline popped while requests were still
		// executing. Let them finish and flush before the socket closes.
		c.connWG.Wait()
		c.close()
	}()
	br := bufio.NewReader(c.nc)
	if err := c.handshake(br); err != nil {
		if err != io.EOF && !isClosedErr(err) {
			c.srv.logf("server: %s: handshake: %v", c.nc.RemoteAddr(), err)
		}
		return
	}
	var buf []byte
	for {
		body, err := wire.ReadFrameLimit(br, buf, c.maxFrame)
		if err != nil {
			if err != io.EOF && !isClosedErr(err) {
				c.srv.logf("server: %s: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		buf = body[:cap(body)] // reuse: handlers get a copy of the payload
		c.srv.bytesIn.Add(uint64(len(body)) + uint64(uvarintLen(uint64(len(body)))))
		req, err := wire.ParseRequest(body)
		if err != nil {
			// A malformed frame poisons the stream (framing may be lost):
			// answer if the id parsed, then drop the connection.
			c.srv.logf("server: %s: %v", c.nc.RemoteAddr(), err)
			c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusBadRequest, Payload: []byte(err.Error())})
			return
		}
		c.srv.requestsByOp[req.Op].Add(1)
		if req.Op == wire.OpCancel {
			// Handled inline: a cancel must not queue behind the very
			// requests it is trying to cancel.
			c.handleCancel(req.Payload)
			continue
		}
		// The payload aliases the read buffer, which the next ReadFrame
		// reuses once the handler runs concurrently — copy it out.
		req.Payload = append([]byte(nil), req.Payload...)
		c.sem <- struct{}{} // backpressure: cap in-flight per connection
		c.srv.reqWG.Add(1)
		c.connWG.Add(1)
		c.srv.inFlight.Add(1)
		go c.handle(req)
	}
}

func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded)
}

// handshakeTimeout bounds how long a fresh connection may sit silent (or
// half-written) before its hello arrives — a mute peer must not pin a
// connection slot forever.
const handshakeTimeout = 10 * time.Second

// handshake runs the server half of the hello exchange: read the client's
// announcement, reply with ours, and fix the connection's negotiated
// frame cap. A peer speaking a different protocol generation (or none)
// still gets our hello — so IT can produce a typed version error — and is
// then disconnected.
func (c *serverConn) handshake(br *bufio.Reader) error {
	c.nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	// Hello frames are tiny; a huge length here is a stray non-protocol
	// peer, not a frame to buffer.
	body, err := wire.ReadFrameLimit(br, nil, 1024)
	reply := wire.AppendHello(nil, wire.LocalHello(c.srv.cfg.MaxFrame))
	if err != nil {
		return err
	}
	remote, herr := wire.ParseHello(body)
	c.wmu.Lock()
	_, werr := c.nc.Write(reply)
	c.wmu.Unlock()
	if herr != nil {
		return herr
	}
	if werr != nil {
		return werr
	}
	c.nc.SetReadDeadline(time.Time{})
	_, c.maxFrame = wire.Negotiate(wire.LocalHello(c.srv.cfg.MaxFrame), remote)
	return nil
}

func (c *serverConn) handleCancel(payload []byte) {
	id, n := binary.Uvarint(payload)
	if n <= 0 {
		return
	}
	c.mu.Lock()
	cf := c.inflight[id]
	c.mu.Unlock()
	if cf != nil {
		cf()
	}
}

// handle executes one request and writes its response.
func (c *serverConn) handle(req wire.Request) {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		c.srv.opLat[req.Op].Observe(d)
		if d >= c.srv.cfg.SlowRequest {
			c.srv.slowRequests.Add(1)
			// The slow-request line carries everything needed to chase
			// the outlier across tiers: the decoded op, the key size
			// (value sizes dominate frame length, key length is the
			// routing input), the durability class (a Sync fsync wait
			// is the usual innocent explanation), and the trace ID the
			// coordinator stamped.
			c.srv.logf("server: %s: slow request: op=%s dur=%v key=%dB durability=%v trace=%s",
				c.nc.RemoteAddr(), req.Op, d.Round(time.Microsecond),
				requestKeyLen(&req), req.Durability, obs.TraceString(req.TraceID))
		}
		c.srv.inFlight.Add(-1)
		c.connWG.Done()
		c.srv.reqWG.Done()
		<-c.sem
	}()

	ctx := c.baseCtx
	var cancel context.CancelFunc
	if req.TimeoutNanos > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutNanos))
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	if req.TraceID != 0 {
		// Propagate the coordinator's trace: when this node fans the
		// request out again (cluster-proxy mode), the client tier stamps
		// the same ID onto the replica requests.
		ctx = obs.WithTrace(ctx, req.TraceID)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cancel()
		return
	}
	c.inflight[req.ID] = cancel
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.inflight, req.ID)
		c.mu.Unlock()
		cancel()
	}()

	payload, err := c.dispatch(ctx, &req)
	if err == nil && c.maxFrame > 0 && uint64(len(payload))+24 > c.maxFrame {
		// The negotiated cap binds the server too: a response the client
		// would refuse to read must become an error, not a dead stream.
		err = badRequestf("response of %d bytes exceeds negotiated frame cap %d (stream through an iterator)",
			len(payload), c.maxFrame)
	}
	resp := wire.Response{ID: req.ID}
	if err != nil {
		var msg string
		resp.Status, msg = wire.StatusOf(err)
		resp.Payload = []byte(msg)
	} else {
		resp.Payload = payload
	}
	c.writeResponse(&resp)
}

func (c *serverConn) writeResponse(r *wire.Response) {
	frame := wire.AppendResponse(nil, r)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.nc.Write(frame); err != nil {
		return
	}
	c.srv.bytesOut.Add(uint64(len(frame)))
}

// --- Dispatch ----------------------------------------------------------------

var errBadRequest = errors.New("bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errBadRequest}, args...)...)
}

// view resolves a request's handle to its read view: 0 is the live
// store, anything else a snapshot lease. Touching the lease refreshes
// its idle clock and marks it busy until release(.)
func (c *serverConn) view(handle uint64) (kv.View, func(), error) {
	if handle == 0 {
		return c.srv.cfg.Store, func() {}, nil
	}
	l, release, err := c.touchLease(handle)
	if err != nil {
		return nil, nil, err
	}
	if l.snap == nil {
		release()
		return nil, nil, badRequestf("handle %d is not a snapshot", handle)
	}
	return l.snap, release, nil
}

// touchLease looks a lease up, refreshes lastUsed, and pins it against
// the janitor until the returned release runs.
func (c *serverConn) touchLease(handle uint64) (*lease, func(), error) {
	c.mu.Lock()
	l, ok := c.leases[handle]
	if !ok {
		c.mu.Unlock()
		// The handle was closed or expired: the kv contract's
		// use-after-release error.
		return nil, nil, kv.ErrSnapshotReleased
	}
	l.lastUsed = time.Now()
	l.busy = true
	c.mu.Unlock()
	release := func() {
		c.mu.Lock()
		l.busy = false
		l.lastUsed = time.Now()
		c.mu.Unlock()
	}
	return l, release, nil
}

func (c *serverConn) addLease(l *lease) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextHandle++
	h := c.nextHandle
	l.lastUsed = time.Now()
	c.leases[h] = l
	return h
}

func (c *serverConn) dropLease(handle uint64) *lease {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[handle]
	delete(c.leases, handle)
	return l
}

func (c *serverConn) dispatch(ctx context.Context, req *wire.Request) ([]byte, error) {
	store := c.srv.cfg.Store
	var wopts []kv.WriteOption
	if req.Durability != kv.DurabilityDefault {
		wopts = []kv.WriteOption{kv.WithDurability(req.Durability)}
	}
	switch req.Op {
	case wire.OpPing:
		return nil, nil

	case wire.OpGet:
		view, release, err := c.view(req.Handle)
		if err != nil {
			return nil, err
		}
		defer release()
		v, found, err := view.Get(ctx, req.Payload)
		if err != nil {
			return nil, err
		}
		if !found {
			return []byte{0}, nil
		}
		out := make([]byte, 0, 1+len(v))
		out = append(out, 1)
		return append(out, v...), nil

	case wire.OpPut:
		if req.Handle != 0 {
			return nil, badRequestf("write through a snapshot handle")
		}
		key, rest, err := wire.ReadBytes(req.Payload)
		if err != nil {
			return nil, err
		}
		return nil, store.Put(ctx, key, rest, wopts...)

	case wire.OpDelete:
		if req.Handle != 0 {
			return nil, badRequestf("write through a snapshot handle")
		}
		return nil, store.Delete(ctx, req.Payload, wopts...)

	case wire.OpApply:
		if req.Handle != 0 {
			return nil, badRequestf("write through a snapshot handle")
		}
		b := kv.NewBatch()
		err := kv.ForEachOp(req.Payload, func(kind keys.Kind, key, value []byte) error {
			if kind == keys.KindDelete {
				b.Delete(key)
			} else {
				b.Put(key, value)
			}
			return nil
		})
		if err != nil {
			return nil, badRequestf("batch: %v", err)
		}
		return nil, store.Apply(ctx, b, wopts...)

	case wire.OpScan:
		view, release, err := c.view(req.Handle)
		if err != nil {
			return nil, err
		}
		defer release()
		low, rest, err := wire.ReadBound(req.Payload)
		if err != nil {
			return nil, err
		}
		high, _, err := wire.ReadBound(rest)
		if err != nil {
			return nil, err
		}
		pairs, err := view.Scan(ctx, low, high)
		if err != nil {
			return nil, err
		}
		return wire.AppendPairs(nil, pairs), nil

	case wire.OpIterOpen:
		return c.handleIterOpen(req)

	case wire.OpIterNext:
		return c.handleIterNext(ctx, req)

	case wire.OpIterClose:
		if l := c.dropLease(req.Handle); l != nil {
			releaseLease(l)
		}
		return nil, nil // idempotent, like kv.Iterator.Close

	case wire.OpSnapOpen:
		if req.Handle != 0 {
			return nil, badRequestf("snapshot of a snapshot")
		}
		snap, err := store.Snapshot(ctx)
		if err != nil {
			return nil, err
		}
		h := c.addLease(&lease{snap: snap})
		return binary.AppendUvarint(nil, h), nil

	case wire.OpSnapClose:
		if l := c.dropLease(req.Handle); l != nil {
			releaseLease(l)
		}
		return nil, nil // idempotent, like kv.View.Close

	case wire.OpSync:
		return nil, store.Sync(ctx)

	case wire.OpStats:
		payload := wire.StatsPayload{Server: c.srv.Info()}
		if sp, ok := store.(kv.StatsProvider); ok {
			payload.Store = sp.Stats()
		}
		if tp, ok := store.(interface{ TelemetrySnapshot() obs.Snapshot }); ok {
			payload.Ops = obs.OpQuantiles(tp.TelemetrySnapshot())
		}
		return json.Marshal(payload)

	case wire.OpVPut:
		if req.Handle != 0 {
			return nil, badRequestf("write through a snapshot handle")
		}
		rec, _, err := wire.ReadVRecord(req.Payload)
		if err != nil {
			return nil, err
		}
		applied, err := c.srv.vput(ctx, rec, wopts)
		if err != nil {
			return nil, err
		}
		if applied {
			return []byte{1}, nil
		}
		return []byte{0}, nil

	case wire.OpVApply:
		if req.Handle != 0 {
			return nil, badRequestf("write through a snapshot handle")
		}
		recs, _, err := wire.ReadVRecords(req.Payload)
		if err != nil {
			return nil, err
		}
		applied, stale, err := c.srv.vapply(ctx, recs, wopts)
		if err != nil {
			return nil, err
		}
		out := binary.AppendUvarint(nil, uint64(applied))
		return binary.AppendUvarint(out, uint64(stale)), nil

	case wire.OpHealth:
		return json.Marshal(wire.HealthInfo{
			NodeID: c.srv.cfg.NodeID,
			Epoch:  c.srv.cfg.RingEpoch,
		})

	case wire.OpTelemetry:
		if c.srv.cfg.Telemetry == nil {
			return nil, fmt.Errorf("server: no telemetry provider: %w", kv.ErrNotSupported)
		}
		maxEvents := 0
		if len(req.Payload) > 0 {
			n, l := binary.Uvarint(req.Payload)
			if l <= 0 {
				return nil, badRequestf("telemetry event count")
			}
			maxEvents = int(n)
		}
		return json.Marshal(c.srv.cfg.Telemetry(maxEvents))

	case wire.OpCheckpoint:
		if req.Handle != 0 {
			return nil, badRequestf("checkpoint through a snapshot handle")
		}
		if len(req.Payload) == 0 {
			return nil, badRequestf("checkpoint: empty directory")
		}
		return nil, store.Checkpoint(ctx, string(req.Payload))

	default:
		return nil, badRequestf("opcode %s", req.Op)
	}
}

// handleIterOpen opens a streaming cursor over the live view or a
// snapshot lease. The iterator captures the CONNECTION's context, not the
// request's: it outlives this request and is positioned by later
// OpIterNext calls, dying with the connection (or its lease expiry).
func (c *serverConn) handleIterOpen(req *wire.Request) ([]byte, error) {
	low, rest, err := wire.ReadBound(req.Payload)
	if err != nil {
		return nil, err
	}
	high, _, err := wire.ReadBound(rest)
	if err != nil {
		return nil, err
	}
	view, release, err := c.view(req.Handle)
	if err != nil {
		return nil, err
	}
	defer release()
	it, err := view.NewIterator(c.baseCtx, low, high)
	if err != nil {
		return nil, err
	}
	h := c.addLease(&lease{iter: it})
	return binary.AppendUvarint(nil, h), nil
}

// handleIterNext streams one chunk: up to maxPairs pairs from the leased
// iterator, positioned by cmd. Response layout:
//
//	done(1) | count(uvarint) | count × (key | value)
//
// done=1 means the iterator is exhausted (no further chunks will yield
// pairs). The client drives chunk size — flow control belongs to the
// consumer — and the server clamps it to MaxChunkPairs.
func (c *serverConn) handleIterNext(ctx context.Context, req *wire.Request) ([]byte, error) {
	maxPairs, n := binary.Uvarint(req.Payload)
	if n <= 0 || len(req.Payload) < n+1 {
		return nil, badRequestf("iter-next header")
	}
	cmd := req.Payload[n]
	seekKey := req.Payload[n+1:]
	if maxPairs == 0 || maxPairs > uint64(c.srv.cfg.MaxChunkPairs) {
		maxPairs = uint64(c.srv.cfg.MaxChunkPairs)
	}
	l, release, err := c.touchLease(req.Handle)
	if err != nil {
		return nil, err
	}
	defer release()
	l.mu.Lock()
	defer l.mu.Unlock()
	it := l.iter
	if it == nil {
		return nil, badRequestf("handle %d is not an iterator", req.Handle)
	}

	var pairs []kv.Pair
	var ok bool
	switch cmd {
	case wire.IterCmdFirst:
		ok = it.First()
	case wire.IterCmdSeek:
		ok = it.Seek(seekKey)
	case wire.IterCmdNext:
		ok = it.Next()
	default:
		return nil, badRequestf("iter command %d", cmd)
	}
	for ok {
		// Key/Value are valid only until the next positioning call: copy
		// into the chunk.
		pairs = append(pairs, kv.Pair{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
		if uint64(len(pairs)) >= maxPairs {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ok = it.Next()
	}
	done := byte(0)
	if !ok {
		if err := it.Err(); err != nil {
			return nil, err
		}
		done = 1
	}
	out := append(make([]byte, 0, 64), done)
	return wire.AppendPairs(out, pairs), nil
}

func uvarintLen(v uint64) int {
	var b [binary.MaxVarintLen64]byte
	return binary.PutUvarint(b[:], v)
}

// requestKeyLen extracts the key length from ops whose payload leads
// with (or is) a key — the slow-request log's size hint. 0 for ops with
// no single key.
func requestKeyLen(req *wire.Request) int {
	switch req.Op {
	case wire.OpGet, wire.OpDelete:
		return len(req.Payload)
	case wire.OpPut:
		if k, _, err := wire.ReadBytes(req.Payload); err == nil {
			return len(k)
		}
	case wire.OpVPut:
		if rec, _, err := wire.ReadVRecord(req.Payload); err == nil {
			return len(rec.Key)
		}
	}
	return 0
}

// --- Versioned-write plane (cluster replication) -----------------------------

// stripeOf maps a key to its version-lock stripe (FNV-1a 64).
func stripeOf(key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % vStripes)
}

// storedVersion reads the version of key's stored copy in the local
// plane: 0 when absent, and 0 for a legacy unversioned value (which any
// replicated write then supersedes).
func (s *Server) storedVersion(ctx context.Context, key []byte) (uint64, error) {
	cur, found, err := s.cfg.Local.Get(ctx, key)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, nil
	}
	ver, _, _, err := wire.ParseVValue(cur)
	if err != nil {
		return 0, nil
	}
	return ver, nil
}

// vput is the conditional newest-wins write: under the key's stripe lock,
// rec lands only if its version exceeds the stored copy's. Tombstones
// land as versioned records too (a stale replica must not resurrect the
// value), to be filtered by the reading coordinator.
func (s *Server) vput(ctx context.Context, rec wire.VRecord, wopts []kv.WriteOption) (bool, error) {
	st := stripeOf(rec.Key)
	s.vlocks[st].Lock()
	defer s.vlocks[st].Unlock()
	cur, err := s.storedVersion(ctx, rec.Key)
	if err != nil {
		return false, err
	}
	if rec.Version <= cur {
		return false, nil
	}
	val := wire.AppendVValue(nil, rec.Version, rec.Tombstone, rec.Value)
	return true, s.cfg.Local.Put(ctx, rec.Key, val, wopts...)
}

// vapply is the batched conditional write: all winning records land in
// ONE engine batch (one WAL record, one group-committed fsync under
// DurabilitySync), with every touched stripe held in ascending order so
// concurrent vapplys cannot deadlock.
func (s *Server) vapply(ctx context.Context, recs []wire.VRecord, wopts []kv.WriteOption) (applied, stale int, err error) {
	if len(recs) == 0 {
		return 0, 0, nil
	}
	var touched [vStripes]bool
	for i := range recs {
		touched[stripeOf(recs[i].Key)] = true
	}
	for i := 0; i < vStripes; i++ {
		if touched[i] {
			s.vlocks[i].Lock()
			defer s.vlocks[i].Unlock()
		}
	}
	b := kv.NewBatch()
	// Later records in one batch supersede earlier ones for the same key
	// at the engine level, which matches newest-wins as long as the batch
	// is version-ordered per key — coordinators send them that way; a
	// same-key pair out of order only costs an extra overwrite.
	for i := range recs {
		cur, verr := s.storedVersion(ctx, recs[i].Key)
		if verr != nil {
			return 0, 0, verr
		}
		if recs[i].Version <= cur {
			stale++
			continue
		}
		b.Put(recs[i].Key, wire.AppendVValue(nil, recs[i].Version, recs[i].Tombstone, recs[i].Value))
		applied++
	}
	if applied == 0 {
		return 0, stale, nil
	}
	return applied, stale, s.cfg.Local.Apply(ctx, b, wopts...)
}
