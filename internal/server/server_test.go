package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"flodb/internal/client"
	"flodb/internal/core"
	"flodb/internal/kv"
	"flodb/internal/server"
)

// startServer opens a small FloDB store and serves it on a loopback
// listener. Returns the address and the store (for reopen assertions).
func startServer(t *testing.T, cfg server.Config) (addr string, store *core.DB, srv *server.Server, dir string) {
	t.Helper()
	dir = t.TempDir()
	store, err := core.Open(core.Config{Dir: dir, MemoryBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	srv = server.New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return l.Addr().String(), store, srv, dir
}

func dial(t *testing.T, addr string, opts ...client.Option) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestRoundTrip(t *testing.T) {
	addr, _, _, _ := startServer(t, server.Config{})
	cl := dial(t, addr)
	ctx := context.Background()

	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(ctx, []byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, found, err := cl.Get(ctx, []byte("k1"))
	if err != nil || !found || string(v) != "v1" {
		t.Fatalf("get: %q %v %v", v, found, err)
	}
	if _, found, err = cl.Get(ctx, []byte("absent")); err != nil || found {
		t.Fatalf("absent get: %v %v", found, err)
	}
	if err := cl.Delete(ctx, []byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, found, _ = cl.Get(ctx, []byte("k1")); found {
		t.Fatal("deleted key still present")
	}

	b := kv.NewBatch()
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := cl.Apply(ctx, b); err != nil {
		t.Fatal(err)
	}
	pairs, err := cl.Scan(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || string(pairs[0].Key) != "b" || string(pairs[0].Value) != "2" {
		t.Fatalf("scan after batch: %v", pairs)
	}
	if err := cl.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	st := cl.Stats()
	if st.Puts == 0 || st.ServerRequests == 0 || st.ServerConnsOpen == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestIteratorStreamsInChunks(t *testing.T) {
	addr, _, _, _ := startServer(t, server.Config{})
	// A 7-pair chunk over 100 keys forces many refill round trips.
	cl := dial(t, addr, client.WithChunkPairs(7))
	ctx := context.Background()
	const n = 100
	for i := 0; i < n; i++ {
		if err := cl.Put(ctx, []byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	it, err := cl.NewIterator(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got int
	var prev []byte
	for ok := it.First(); ok; ok = it.Next() {
		if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
			t.Fatalf("out of order: %q after %q", it.Key(), prev)
		}
		prev = append(prev[:0], it.Key()...)
		got++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("iterated %d keys, want %d", got, n)
	}
	// Seek repositions the server-side cursor.
	if !it.Seek([]byte("k050")) || string(it.Key()) != "k050" {
		t.Fatalf("seek: %q, err %v", it.Key(), it.Err())
	}
	if !it.Next() || string(it.Key()) != "k051" {
		t.Fatalf("next after seek: %q", it.Key())
	}
}

func TestIteratorCancelMidStream(t *testing.T) {
	addr, _, _, _ := startServer(t, server.Config{})
	cl := dial(t, addr, client.WithChunkPairs(4))
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		if err := cl.Put(ctx, []byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	itCtx, cancel := context.WithCancel(ctx)
	it, err := cl.NewIterator(itCtx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.First() {
		t.Fatalf("first: %v", it.Err())
	}
	for i := 0; i < 10; i++ {
		if !it.Next() {
			t.Fatalf("next %d: %v", i, it.Err())
		}
	}
	cancel()
	// The buffered tail may still serve a few Next calls; a refill must
	// fail with the context error.
	for i := 0; i < 16 && it.Next(); i++ {
	}
	if !errors.Is(it.Err(), context.Canceled) {
		t.Fatalf("after cancel: %v, want context.Canceled", it.Err())
	}
}

func TestSnapshotIsolationOverWire(t *testing.T) {
	addr, _, _, _ := startServer(t, server.Config{})
	cl := dial(t, addr)
	ctx := context.Background()
	if err := cl.Put(ctx, []byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(ctx, []byte("k"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	v, found, err := snap.Get(ctx, []byte("k"))
	if err != nil || !found || string(v) != "old" {
		t.Fatalf("snapshot get: %q %v %v", v, found, err)
	}
	if v, _, _ := cl.Get(ctx, []byte("k")); string(v) != "new" {
		t.Fatalf("live get: %q", v)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := snap.Get(ctx, []byte("k")); !errors.Is(err, kv.ErrSnapshotReleased) {
		t.Fatalf("use after close: %v, want ErrSnapshotReleased", err)
	}
}

func TestLeaseExpiry(t *testing.T) {
	addr, _, _, _ := startServer(t, server.Config{LeaseIdle: 50 * time.Millisecond})
	cl := dial(t, addr)
	ctx := context.Background()
	if err := cl.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	// Idle long past LeaseIdle: the janitor must collect the lease.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, err = snap.Get(ctx, []byte("k"))
		if errors.Is(err, kv.ErrSnapshotReleased) {
			return
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestPipelinedRequestsShareOneConnection(t *testing.T) {
	addr, _, _, _ := startServer(t, server.Config{})
	cl := dial(t, addr, client.WithConns(1))
	ctx := context.Background()
	const workers, perWorker = 16, 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := []byte(fmt.Sprintf("w%02d-%03d", w, i))
				if err := cl.Put(ctx, key, key); err != nil {
					errCh <- err
					return
				}
				v, found, err := cl.Get(ctx, key)
				if err != nil || !found || !bytes.Equal(v, key) {
					errCh <- fmt.Errorf("get %q: %q %v %v", key, v, found, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	pairs, err := cl.Scan(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != workers*perWorker {
		t.Fatalf("scan found %d keys, want %d", len(pairs), workers*perWorker)
	}
}

func TestClientCloseReturnsErrClosed(t *testing.T) {
	addr, _, _, _ := startServer(t, server.Config{})
	cl := dial(t, addr)
	ctx := context.Background()
	if err := cl.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := cl.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("put after close: %v, want ErrClosed", err)
	}
	if _, _, err := cl.Get(ctx, []byte("k")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("get after close: %v, want ErrClosed", err)
	}
}

// TestDrainFlushesInFlight asserts the Shutdown contract: requests
// accepted before the drain complete and flush their responses, and
// acked Buffered writes survive the drain + store close + reopen.
func TestDrainFlushesInFlight(t *testing.T) {
	dir := t.TempDir()
	store, err := core.Open(core.Config{Dir: dir, MemoryBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Store: store})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	cl, err := client.Dial(l.Addr().String(), client.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const n = 200
	acked := make([][]byte, 0, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("d%04d", i))
			// Buffered class: logged, acked without fsync. The ack is a
			// promise that a CLEAN shutdown preserves the write.
			if err := cl.Put(ctx, key, key, kv.WithDurability(kv.DurabilityBuffered)); err == nil {
				mu.Lock()
				acked = append(acked, key)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	sctx, scancel := context.WithTimeout(ctx, 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := core.Open(core.Config{Dir: dir, MemoryBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, key := range acked {
		if _, found, err := re.Get(ctx, key); err != nil || !found {
			t.Fatalf("acked write %q lost across drain: found=%v err=%v", key, found, err)
		}
	}
	if len(acked) != n {
		t.Fatalf("only %d/%d puts acked before drain", len(acked), n)
	}
}

// TestServerStress is the nightly -race exercise: concurrent clients,
// pipelined batches, snapshots, iterators with mid-stream cancels, all
// against one server, ending in a drain.
func TestServerStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	addr, _, srv, _ := startServer(t, server.Config{MaxInFlight: 32})
	ctx := context.Background()

	const clients = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients*4)
	for cnum := 0; cnum < clients; cnum++ {
		cl := dial(t, addr, client.WithConns(2), client.WithChunkPairs(16))
		// Pipelined batch writers.
		wg.Add(1)
		go func(cnum int, cl *client.Client) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				b := kv.NewBatch()
				for j := 0; j < 8; j++ {
					b.Put([]byte(fmt.Sprintf("c%d-b%03d-%d", cnum, i, j)), []byte("v"))
				}
				if err := cl.Apply(ctx, b); err != nil {
					errCh <- fmt.Errorf("apply: %w", err)
					return
				}
			}
		}(cnum, cl)
		// Scanning readers with mid-stream cancels.
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ictx, cancel := context.WithCancel(ctx)
				it, err := cl.NewIterator(ictx, nil, nil)
				if err != nil {
					cancel()
					errCh <- fmt.Errorf("iter open: %w", err)
					return
				}
				for ok, n := it.First(), 0; ok && n < 30; ok, n = it.Next(), n+1 {
					if n == 15 && i%2 == 0 {
						cancel() // mid-stream cancel half the time
					}
				}
				if err := it.Err(); err != nil && !errors.Is(err, context.Canceled) {
					cancel()
					errCh <- fmt.Errorf("iter: %w", err)
					return
				}
				it.Close()
				cancel()
			}
		}(cl)
		// Snapshot open/read/close churn.
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				snap, err := cl.Snapshot(ctx)
				if err != nil {
					errCh <- fmt.Errorf("snapshot: %w", err)
					return
				}
				if _, err := snap.Scan(ctx, nil, []byte("c1")); err != nil {
					errCh <- fmt.Errorf("snap scan: %w", err)
					snap.Close()
					return
				}
				snap.Close()
			}
		}(cl)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("drain after stress: %v", err)
	}
}
