package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRegistrySnapshotAndMerge(t *testing.T) {
	mk := func(puts uint64) Snapshot {
		r := NewRegistry()
		r.Counter("flodb_puts_total", "Put operations.").Add(puts)
		r.Gauge("flodb_mem_bytes", "Memory component bytes.").Set(100)
		r.CounterFunc("flodb_flushes_total", "Flushes.", func() uint64 { return 3 })
		h := r.Histogram(`flodb_op_latency_seconds{op="put"}`, "Op latency.")
		h.Observe(time.Millisecond)
		return r.Snapshot()
	}
	m := Merge(mk(5), mk(7))
	byName := map[string]Metric{}
	for _, mt := range m.Metrics {
		byName[mt.Name] = mt
	}
	if v := byName["flodb_puts_total"].Value; v != 12 {
		t.Fatalf("merged counter %d, want 12", v)
	}
	if v := byName["flodb_mem_bytes"].Value; v != 200 {
		t.Fatalf("merged gauge %d, want 200 (gauges sum across shards)", v)
	}
	if h := byName[`flodb_op_latency_seconds{op="put"}`].Hist; h == nil || h.Count != 2 {
		t.Fatalf("merged histogram: %+v", h)
	}
	// Re-registering the same name returns the same metric; a kind clash
	// panics.
	r := NewRegistry()
	c1 := r.Counter("x", "")
	c2 := r.Counter("x", "")
	if c1 != c2 {
		t.Fatal("same-name counter not shared")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind clash did not panic")
			}
		}()
		r.Gauge("x", "")
	}()
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("flodb_puts_total", "Put operations.").Add(42)
	r.Gauge("flodb_mem_bytes", "Bytes.").Set(1 << 20)
	for _, op := range []string{"put", "get", "scan", "snapshot"} {
		h := r.Histogram(fmt.Sprintf(`flodb_op_latency_seconds{op=%q}`, op), "Op latency.")
		for i := 1; i <= 100; i++ {
			h.Observe(time.Duration(i) * 10 * time.Microsecond)
		}
	}
	snap := Merge(r.Snapshot(), Snapshot{Metrics: EventCountMetrics(func() *EventLog {
		l := NewEventLog(8)
		l.Emit(Event{Type: EventFlush})
		l.Emit(Event{Type: EventFlush})
		l.Emit(Event{Type: EventCompaction})
		return l
	}())})
	var buf strings.Builder
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	fams, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	for _, want := range []string{"flodb_puts_total", "flodb_mem_bytes", "flodb_op_latency_seconds", "flodb_events_total"} {
		if fams[want] == nil {
			t.Errorf("family %s missing from exposition; have %v", want, FamilyNames(fams))
		}
	}
	if fams["flodb_op_latency_seconds"].Type != "histogram" {
		t.Fatalf("op latency family type %q", fams["flodb_op_latency_seconds"].Type)
	}
	// One HELP/TYPE block per family even with four labeled series.
	if n := strings.Count(text, "# TYPE flodb_op_latency_seconds "); n != 1 {
		t.Fatalf("TYPE emitted %d times for the labeled family", n)
	}
	if !strings.Contains(text, `flodb_op_latency_seconds_bucket{op="put",le="+Inf"}`) {
		t.Fatalf("missing +Inf bucket:\n%s", text)
	}
	if !strings.Contains(text, `flodb_events_total{type="flush"} 2`) {
		t.Fatalf("missing event counts:\n%s", text)
	}
}

// TestEventLogTruncation checks ring-buffer truncation ordering: when
// the ring overflows, Recent returns exactly the newest window, oldest
// first, with contiguous sequence numbers, and totals keep counting.
func TestEventLogTruncation(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 20; i++ {
		l.Emit(Event{Type: EventFlush, Bytes: int64(i)})
	}
	evs := l.Recent(0)
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i, e := range evs {
		if want := uint64(12 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first, newest window)", i, e.Seq, want)
		}
		if e.Bytes != int64(12+i) {
			t.Fatalf("event %d payload %d, want %d", i, e.Bytes, 12+i)
		}
		if i > 0 && evs[i-1].Time.After(e.Time) {
			t.Fatal("events out of time order")
		}
	}
	if got := l.Recent(3); len(got) != 3 || got[2].Seq != 19 {
		t.Fatalf("Recent(3) = %+v", got)
	}
	if l.Total() != 20 {
		t.Fatalf("total %d, want 20", l.Total())
	}
	if c := l.Counts()[EventFlush]; c != 20 {
		t.Fatalf("type count %d, want 20 (overwritten events still count)", c)
	}
	// Nil log is inert.
	var nilLog *EventLog
	nilLog.Emit(Event{Type: EventFlush})
	if nilLog.Recent(1) != nil || nilLog.Total() != 0 {
		t.Fatal("nil event log not inert")
	}
}

func TestMergeEventsInterleavesByTime(t *testing.T) {
	base := time.Now()
	a := []Event{{Type: "a1", Time: base}, {Type: "a2", Time: base.Add(2 * time.Second)}}
	b := []Event{{Type: "b1", Time: base.Add(time.Second)}, {Type: "b2", Time: base.Add(3 * time.Second)}}
	m := MergeEvents(0, a, b)
	var order []string
	for _, e := range m {
		order = append(order, e.Type)
	}
	if strings.Join(order, ",") != "a1,b1,a2,b2" {
		t.Fatalf("merged order %v", order)
	}
	if got := MergeEvents(2, a, b); len(got) != 2 || got[1].Type != "b2" {
		t.Fatalf("MergeEvents(2) = %+v", got)
	}
}

func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("flodb_puts_total", "Puts.").Add(1)
	l := NewEventLog(8)
	l.Emit(Event{Type: EventSeal, Dur: time.Millisecond})
	mux := DebugMux(DebugOptions{
		Snapshot: func() Snapshot { return r.Snapshot() },
		Events:   func(n int) []Event { return l.Recent(n) },
		Statsz:   func() any { return map[string]int{"puts": 1} },
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		if _, err := fmt.Fprint(&buf, readAll(t, resp.Body)); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, buf.String())
		}
		return buf.String()
	}
	if _, err := ParsePrometheus(strings.NewReader(get("/metrics"))); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	var evs []Event
	if err := json.Unmarshal([]byte(get("/events?last=5")), &evs); err != nil || len(evs) != 1 || evs[0].Type != EventSeal {
		t.Fatalf("/events: %v %+v", err, evs)
	}
	var statsz map[string]int
	if err := json.Unmarshal([]byte(get("/statsz")), &statsz); err != nil || statsz["puts"] != 1 {
		t.Fatalf("/statsz: %v %+v", err, statsz)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}
}

func readAll(t *testing.T, r interface{ Read([]byte) (int, error) }) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

func TestTraceIDs(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 || seen[id] {
			t.Fatalf("duplicate or zero trace ID %x", id)
		}
		seen[id] = true
	}
	ctx, id := EnsureTrace(t.Context())
	if id == 0 || Trace(ctx) != id {
		t.Fatal("EnsureTrace did not attach")
	}
	ctx2, id2 := EnsureTrace(ctx)
	if id2 != id || ctx2 != ctx {
		t.Fatal("EnsureTrace re-minted an existing trace")
	}
	if TraceString(0) != "-" || len(TraceString(id)) != 16 {
		t.Fatalf("TraceString formatting: %q %q", TraceString(0), TraceString(id))
	}
}
