// Package obs is the telemetry layer: a dependency-free metrics
// registry (atomic counters, gauges, and log-linear latency histograms
// with lock-free hot-path recording), a bounded structured event log,
// Prometheus-text exposition, and the /debug HTTP surface flodbd
// mounts. Every other layer imports obs; obs imports only the standard
// library.
//
// The registry is a snapshot machine, not a scrape framework: layers
// register metrics once at Open and mutate them with single atomic
// operations; readers call Snapshot for a point-in-time copy that can
// be merged across shards or nodes (counters and gauges sum, histograms
// merge bucket-wise, events interleave by time) and rendered to
// Prometheus text or JSON. kv.Stats reads the same counters that feed
// /metrics, so nothing double-counts.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; counters obtained from a Registry are additionally exported.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Kind discriminates metric types in snapshots and exposition.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// metric is one registry entry. Exactly one of the value fields is set,
// matching kind.
type metric struct {
	name string // may carry a label suffix: `fam{op="put"}`
	help string
	kind Kind

	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() int64
	hist      *Histogram
}

// Registry is an ordered collection of named metrics. Registration is
// rare (store open); reads take a snapshot. Metric names follow
// Prometheus conventions and may embed a fixed label set in the name
// (`flodb_op_latency_seconds{op="put"}`); the text before the brace is
// the metric family, and HELP/TYPE are emitted once per family.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[m.name]; ok {
		if prev.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", m.name, m.kind, prev.kind))
		}
		return prev
	}
	r.metrics = append(r.metrics, m)
	r.byName[m.name] = m
	return m
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&metric{name: name, help: help, kind: KindCounter, counter: &Counter{}})
	return m.counter
}

// CounterFunc registers a counter whose value is computed at snapshot
// time — the bridge for layers that already keep their own atomics
// (wal.Metrics, storage.Metrics): the registry view reads them, it does
// not duplicate them.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&metric{name: name, help: help, kind: KindCounter, counterFn: fn})
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(&metric{name: name, help: help, kind: KindGauge, gauge: &Gauge{}})
	return m.gauge
}

// GaugeFunc registers a gauge computed at snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: KindGauge, gaugeFn: fn})
}

// Histogram registers (or returns the existing) latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	m := r.register(&metric{name: name, help: help, kind: KindHistogram, hist: NewHistogram()})
	return m.hist
}

// Metric is one entry of a Snapshot: a frozen counter/gauge value or a
// frozen histogram.
type Metric struct {
	Name  string        `json:"name"`
	Help  string        `json:"help,omitempty"`
	Kind  Kind          `json:"kind"`
	Value int64         `json:"value,omitempty"`
	Hist  *HistSnapshot `json:"hist,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, safe to merge,
// marshal, or render after the source keeps mutating.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot freezes every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	s := Snapshot{Metrics: make([]Metric, 0, len(metrics))}
	for _, m := range metrics {
		out := Metric{Name: m.name, Help: m.help, Kind: m.kind}
		switch {
		case m.counter != nil:
			out.Value = int64(m.counter.Load())
		case m.counterFn != nil:
			out.Value = int64(m.counterFn())
		case m.gauge != nil:
			out.Value = m.gauge.Load()
		case m.gaugeFn != nil:
			out.Value = m.gaugeFn()
		case m.hist != nil:
			out.Hist = m.hist.Snapshot()
		}
		s.Metrics = append(s.Metrics, out)
	}
	return s
}

// Merge combines snapshots: same-name counters and gauges sum,
// same-name histograms merge bucket-wise (the per-shard merge), and
// distinct names union. Order follows first appearance, so a stable
// input order yields a stable exposition.
func Merge(snaps ...Snapshot) Snapshot {
	var out Snapshot
	idx := make(map[string]int)
	for _, s := range snaps {
		for _, m := range s.Metrics {
			i, ok := idx[m.Name]
			if !ok {
				idx[m.Name] = len(out.Metrics)
				cp := m
				if m.Hist != nil {
					cp.Hist = m.Hist.Clone()
				}
				out.Metrics = append(out.Metrics, cp)
				continue
			}
			dst := &out.Metrics[i]
			switch dst.Kind {
			case KindHistogram:
				if m.Hist != nil {
					if dst.Hist == nil {
						dst.Hist = m.Hist.Clone()
					} else {
						dst.Hist.Merge(m.Hist)
					}
				}
			default:
				dst.Value += m.Value
			}
		}
	}
	return out
}

// family splits a metric name into its family and label suffix:
// `fam{op="put"}` → ("fam", `op="put"`); a bare name has no labels.
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// sortedByFamily returns the snapshot's metrics grouped by family,
// families in first-appearance order, series within a family in
// appearance order.
func (s Snapshot) sortedByFamily() []Metric {
	order := make(map[string]int)
	for _, m := range s.Metrics {
		fam, _ := family(m.Name)
		if _, ok := order[fam]; !ok {
			order[fam] = len(order)
		}
	}
	out := append([]Metric(nil), s.Metrics...)
	sort.SliceStable(out, func(i, j int) bool {
		fi, _ := family(out[i].Name)
		fj, _ := family(out[j].Name)
		return order[fi] < order[fj]
	})
	return out
}
