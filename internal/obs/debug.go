package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// SnapshotProvider is implemented by stores that expose a mergeable
// metrics snapshot (the engine, the shard router, the coordinator).
type SnapshotProvider interface {
	TelemetrySnapshot() Snapshot
}

// EventProvider is implemented by stores that retain a structured event
// log; n <= 0 returns everything buffered.
type EventProvider interface {
	TelemetryEvents(n int) []Event
}

// DebugOptions wires a process's telemetry sources into the debug mux.
// Every field is a function so each scrape sees a fresh (and, for
// sharded or multi-source processes, freshly merged) view.
type DebugOptions struct {
	// Snapshot returns the merged metrics snapshot served at /metrics.
	Snapshot func() Snapshot
	// Events returns up to n recent events (n <= 0: all retained),
	// served at /events?last=N.
	Events func(n int) []Event
	// Statsz returns the structure rendered as JSON at /statsz —
	// typically the kv.Stats view plus op quantiles.
	Statsz func() any
}

// DebugMux returns the /debug telemetry surface flodbd serves:
//
//	/metrics        Prometheus text exposition (plus event counts)
//	/events?last=N  JSON array of recent structured events
//	/statsz         JSON stats dump (kv.Stats + op quantiles)
//	/debug/pprof/   stdlib pprof (profile, heap, trace, ...)
func DebugMux(o DebugOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var s Snapshot
		if o.Snapshot != nil {
			s = o.Snapshot()
		}
		_ = s.WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if v := r.URL.Query().Get("last"); v != "" {
			p, err := strconv.Atoi(v)
			if err != nil || p < 0 {
				http.Error(w, "bad last parameter", http.StatusBadRequest)
				return
			}
			n = p
		}
		var evs []Event
		if o.Events != nil {
			evs = o.Events(n)
		}
		if evs == nil {
			evs = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(evs)
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		var v any
		if o.Statsz != nil {
			v = o.Statsz()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
