package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Trace IDs tie one logical request together across layers and nodes: a
// coordinator stamps (or receives) an ID, propagates it to replicas in
// the wire request header, and every slow-request log line prints it —
// so one slow quorum write is attributable to the replica (or the
// compaction event near its timestamp) that caused it.

type traceKeyType struct{}

var traceKey traceKeyType

// traceState is a process-unique base mixed with a counter: IDs are
// unique within a process and collide across processes with ~2^-41
// probability per pair, plenty for log correlation.
var traceBase, traceCtr = func() (uint64, *atomic.Uint64) {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// No entropy source: fall back to a fixed base; the counter still
		// keeps IDs unique within the process.
		b = [8]byte{0xf1, 0x0d, 0xb0, 0x05, 0xee, 0xd5, 0x11, 0x7e}
	}
	return binary.LittleEndian.Uint64(b[:]), new(atomic.Uint64)
}()

// NewTraceID returns a fresh nonzero trace ID.
func NewTraceID() uint64 {
	// splitmix64 over base+counter: well-distributed, no locking.
	z := traceBase + traceCtr.Add(1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// WithTrace returns ctx carrying the trace ID. A zero ID is dropped.
func WithTrace(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceKey, id)
}

// Trace returns the context's trace ID, or 0 if none is set.
func Trace(ctx context.Context) uint64 {
	id, _ := ctx.Value(traceKey).(uint64)
	return id
}

// EnsureTrace returns the context's trace ID, minting and attaching one
// if absent — the coordinator-edge entry point.
func EnsureTrace(ctx context.Context) (context.Context, uint64) {
	if id := Trace(ctx); id != 0 {
		return ctx, id
	}
	id := NewTraceID()
	return WithTrace(ctx, id), id
}

// TraceString formats an ID the way log lines and flodbctl print it.
func TraceString(id uint64) string {
	if id == 0 {
		return "-"
	}
	return fmt.Sprintf("%016x", id)
}
