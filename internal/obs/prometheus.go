package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4). Histograms are emitted with cumulative `le`
// buckets in SECONDS at power-of-two nanosecond bounds — the internal
// log-linear resolution is coarsened 4:1 so a scrape carries ~30 buckets
// per series instead of ~250, which is still finer than a stock
// prometheus client default. Counter families whose name embeds labels
// (`fam{op="put"}`) emit HELP/TYPE once per family.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFam := ""
	for _, m := range s.sortedByFamily() {
		fam, labels := family(m.Name)
		if fam != lastFam {
			if m.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", fam, strings.ReplaceAll(m.Help, "\n", " "))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, m.Kind)
			lastFam = fam
		}
		switch m.Kind {
		case KindHistogram:
			writeHistProm(bw, fam, labels, m.Hist)
		default:
			fmt.Fprintf(bw, "%s %d\n", m.Name, m.Value)
		}
	}
	return bw.Flush()
}

// promBounds returns the coarsened cumulative bucket bounds (ns) used in
// the exposition: every power of two from 256ns through ~17s.
func promBounds() []int64 {
	var out []int64
	for exp := 8; exp <= 34; exp++ {
		out = append(out, int64(1)<<uint(exp))
	}
	return out
}

func writeHistProm(w io.Writer, fam, labels string, h *HistSnapshot) {
	withLe := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`%s_bucket{le="%s"}`, fam, le)
		}
		return fmt.Sprintf(`%s_bucket{%s,le="%s"}`, fam, labels, le)
	}
	suffix := func(sfx string) string {
		if labels == "" {
			return fam + sfx
		}
		return fam + sfx + "{" + labels + "}"
	}
	var cum uint64
	bi := 0
	counts := []BucketCount(nil)
	if h != nil {
		counts = h.Counts
	}
	for _, bound := range promBounds() {
		for bi < len(counts) && BucketLow(counts[bi].Bucket) < bound {
			cum += counts[bi].Count
			bi++
		}
		// le bounds are seconds per Prometheus convention.
		fmt.Fprintf(w, "%s %d\n", withLe(strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)), cum)
	}
	var total uint64
	var sum int64
	if h != nil {
		total, sum = h.Count, h.Sum
	}
	fmt.Fprintf(w, "%s %d\n", withLe("+Inf"), total)
	fmt.Fprintf(w, "%s %s\n", suffix("_sum"), strconv.FormatFloat(float64(sum)/1e9, 'g', -1, 64))
	fmt.Fprintf(w, "%s %d\n", suffix("_count"), total)
}

// PromFamily is one parsed metric family from a text exposition.
type PromFamily struct {
	Name    string
	Type    string
	Samples int
}

// ParsePrometheus is a strict-enough parser for the subset of the text
// format WritePrometheus emits; CI uses it to fail the build when a
// scrape stops parsing or a registered metric disappears. It validates
// that every sample line has a parseable float value, that histogram
// families carry a +Inf bucket with _sum and _count, and that
// cumulative bucket counts are monotonic.
func ParsePrometheus(r io.Reader) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	types := make(map[string]string)
	lastLe := make(map[string]float64) // series (without le) → last cumulative count
	inf := make(map[string]bool)       // histogram fam → saw +Inf
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		// name{labels} value  — labels may contain spaces inside quotes,
		// but ours never do; split on the last space.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: line %d: no value separator in %q", lineNo, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %v", lineNo, valStr, err)
		}
		if math.IsNaN(val) {
			return nil, fmt.Errorf("obs: line %d: NaN value", lineNo)
		}
		name := series
		var labels string
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return nil, fmt.Errorf("obs: line %d: unterminated labels in %q", lineNo, series)
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		fam := name
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if t := strings.TrimSuffix(name, sfx); t != name && types[t] == "histogram" {
				fam = t
			}
		}
		if _, ok := types[fam]; !ok {
			return nil, fmt.Errorf("obs: line %d: sample %q has no # TYPE line", lineNo, series)
		}
		if strings.HasSuffix(name, "_bucket") && types[fam] == "histogram" {
			le := ""
			rest := labels
			for _, kv := range strings.Split(rest, ",") {
				if v, ok := strings.CutPrefix(kv, `le="`); ok {
					le = strings.TrimSuffix(v, `"`)
				}
			}
			if le == "" {
				return nil, fmt.Errorf("obs: line %d: histogram bucket without le label", lineNo)
			}
			key := fam + "{" + strings.ReplaceAll(labels, `le="`+le+`"`, "") + "}"
			if prev, ok := lastLe[key]; ok && val < prev {
				return nil, fmt.Errorf("obs: line %d: non-monotonic cumulative bucket (%v < %v)", lineNo, val, prev)
			}
			lastLe[key] = val
			if le == "+Inf" {
				inf[fam] = true
			}
		}
		f := fams[fam]
		if f == nil {
			f = &PromFamily{Name: fam, Type: types[fam]}
			fams[fam] = f
		}
		f.Samples++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for fam, t := range types {
		if t == "histogram" {
			if f, ok := fams[fam]; ok && f.Samples > 0 && !inf[fam] {
				return nil, fmt.Errorf("obs: histogram %s has no +Inf bucket", fam)
			}
		}
	}
	return fams, nil
}

// FamilyNames returns the sorted family names of a parse result, for
// "every registered metric is present" assertions.
func FamilyNames(fams map[string]*PromFamily) []string {
	out := make([]string, 0, len(fams))
	for n := range fams {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
