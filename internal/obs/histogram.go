package obs

import (
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// The histogram is log-linear, the same geometry as the bench harness's:
// 4 linear sub-buckets per power of two from 1ns up to ~17s, so relative
// error is bounded at ~12.5% everywhere while recording stays one atomic
// increment. Exponent 62 caps bucket midpoints within int64 nanoseconds.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits
	// HistBuckets is the bucket count of the log-linear histogram.
	HistBuckets = (62-histSubBits)<<histSubBits + histSub + histSub
)

// BucketOf returns the bucket index for a nanosecond latency. Exported
// for boundary tests.
func BucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	v := uint64(ns)
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	sub := (v >> (uint(exp) - histSubBits)) & (histSub - 1)
	b := (exp-histSubBits)<<histSubBits + int(sub) + histSub
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketLow returns the inclusive lower bound (ns) of bucket i; values v
// with BucketLow(i) <= v < BucketLow(i+1) land in bucket i.
func BucketLow(i int) int64 {
	if i <= histSub {
		return int64(i)
	}
	exp := (i-histSub)>>histSubBits + histSubBits
	sub := (i - histSub) & (histSub - 1)
	base := uint64(1) << uint(exp)
	step := base >> histSubBits
	return int64(base + uint64(sub)*step)
}

// bucketMid returns a representative nanosecond value for bucket i.
func bucketMid(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := (i-histSub)>>histSubBits + histSubBits
	sub := (i - histSub) & (histSub - 1)
	base := uint64(1) << uint(exp)
	step := base >> histSubBits
	return int64(base + uint64(sub)*step + step/2)
}

// Histogram is a concurrent log-linear latency histogram. Recording is
// lock-free (two atomic adds, no time formatting, no allocation); all
// read methods are safe concurrently with recording. A nil *Histogram
// ignores Observe and reports zero everywhere, so disabled-telemetry
// paths hold nil pointers instead of branching.
type Histogram struct {
	counts [HistBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64 // total nanoseconds, for the exposition _sum
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one latency observation.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	h.counts[BucketOf(ns)].Add(1)
	h.total.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Snapshot freezes the histogram. Concurrent recording may tear count
// vs buckets by a few observations; the snapshot clamps so quantiles
// stay well-defined.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{}
	if h == nil {
		return s
	}
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			s.Counts = append(s.Counts, BucketCount{Bucket: i, Count: c})
			s.Count += c
		}
	}
	s.Sum = h.sum.Load()
	return s
}

// BucketCount is one non-empty bucket of a frozen histogram; the sparse
// encoding keeps wire payloads proportional to occupied buckets, not
// the bucket-space size.
type BucketCount struct {
	Bucket int    `json:"b"`
	Count  uint64 `json:"c"`
}

// HistSnapshot is a frozen histogram: mergeable, marshalable, and the
// unit quantiles are extracted from.
type HistSnapshot struct {
	Count  uint64        `json:"count"`
	Sum    int64         `json:"sum_ns"`
	Counts []BucketCount `json:"counts,omitempty"`
}

// Clone returns a deep copy.
func (s *HistSnapshot) Clone() *HistSnapshot {
	cp := *s
	cp.Counts = append([]BucketCount(nil), s.Counts...)
	return &cp
}

// Merge folds other into s bucket-wise — the per-shard (and per-node)
// histogram merge.
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	if other == nil {
		return
	}
	dense := make(map[int]uint64, len(s.Counts)+len(other.Counts))
	for _, bc := range s.Counts {
		dense[bc.Bucket] += bc.Count
	}
	for _, bc := range other.Counts {
		dense[bc.Bucket] += bc.Count
	}
	s.Counts = s.Counts[:0]
	bkts := make([]int, 0, len(dense))
	for b := range dense {
		bkts = append(bkts, b)
	}
	sort.Ints(bkts)
	for _, b := range bkts {
		s.Counts = append(s.Counts, BucketCount{Bucket: b, Count: dense[b]})
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Quantile returns the approximate q-quantile (0 < q <= 1) in
// nanoseconds (bucket midpoint), or 0 when empty.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var cum uint64
	for _, bc := range s.Counts {
		cum += bc.Count
		if cum > target {
			return bucketMid(bc.Bucket)
		}
	}
	return bucketMid(s.Counts[len(s.Counts)-1].Bucket)
}

// Mean returns the exact mean in nanoseconds (the sum is tracked, not
// reconstructed from buckets), or 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantiles is the fixed set every surface reports: p50/p90/p99/p999,
// in nanoseconds.
type Quantiles struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_ns"`
	P50   int64   `json:"p50_ns"`
	P90   int64   `json:"p90_ns"`
	P99   int64   `json:"p99_ns"`
	P999  int64   `json:"p999_ns"`
}

// QuantilesOf extracts the standard quantile set from a snapshot.
func QuantilesOf(s *HistSnapshot) Quantiles {
	if s == nil {
		return Quantiles{}
	}
	return Quantiles{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
	}
}

// opLatencyPrefix is the canonical per-op latency family every engine
// registers; OpQuantiles keys the extraction on it.
const opLatencyPrefix = `flodb_op_latency_seconds{op="`

// OpQuantiles extracts the per-op latency quantiles from a snapshot's
// flodb_op_latency_seconds histograms, keyed by op label ("put", "get",
// ...). Nil when the snapshot holds none (telemetry disabled).
func OpQuantiles(s Snapshot) map[string]Quantiles {
	var out map[string]Quantiles
	for _, m := range s.Metrics {
		if m.Kind != KindHistogram || m.Hist == nil {
			continue
		}
		name, ok := strings.CutPrefix(m.Name, opLatencyPrefix)
		if !ok {
			continue
		}
		op, ok := strings.CutSuffix(name, `"}`)
		if !ok {
			continue
		}
		if out == nil {
			out = make(map[string]Quantiles)
		}
		out[op] = QuantilesOf(m.Hist)
	}
	return out
}
