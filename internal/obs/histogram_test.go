package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries checks the log-linear geometry invariants: every
// bucket's low bound maps back into that bucket, the value one below
// maps into the previous bucket, and BucketOf is monotone.
func TestBucketBoundaries(t *testing.T) {
	for i := 1; i < HistBuckets; i++ {
		low := BucketLow(i)
		if got := BucketOf(low); got != i {
			t.Fatalf("BucketOf(BucketLow(%d)=%d) = %d", i, low, got)
		}
		if low > 1 {
			if got := BucketOf(low - 1); got != i-1 {
				t.Fatalf("BucketOf(%d) = %d, want %d (one below bucket %d's low bound)", low-1, got, i-1, i)
			}
		}
	}
	prev := 0
	for ns := int64(1); ns < int64(1)<<40; ns = ns*3/2 + 1 {
		b := BucketOf(ns)
		if b < prev {
			t.Fatalf("BucketOf not monotone at %d: %d < %d", ns, b, prev)
		}
		prev = b
	}
	// Relative error bound: the bucket midpoint is within ~12.5% + half a
	// step of any value in the bucket.
	for ns := int64(100); ns < 1e9; ns = ns * 7 / 3 {
		mid := bucketMid(BucketOf(ns))
		if rel := float64(mid-ns) / float64(ns); rel > 0.15 || rel < -0.15 {
			t.Fatalf("bucketMid(BucketOf(%d)) = %d, relative error %.3f", ns, mid, rel)
		}
	}
}

// TestQuantileOracle compares quantile extraction against a sorted
// sample oracle on a heavy-tailed distribution: the histogram's answer
// must land within one bucket width (12.5% + slack) of the exact
// order statistic.
func TestQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	samples := make([]int64, 0, 200000)
	for i := 0; i < cap(samples); i++ {
		// Log-uniform over [100ns, 100ms] — spans 6 decades like real op
		// latency under compaction interference.
		ns := int64(100 * math.Pow(10, rng.Float64()*6))
		samples = append(samples, ns)
		h.Observe(time.Duration(ns))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(samples)) {
		t.Fatalf("snapshot count %d, want %d", s.Count, len(samples))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))]
		got := s.Quantile(q)
		rel := float64(got-exact) / float64(exact)
		if rel > 0.15 || rel < -0.15 {
			t.Errorf("q=%v: histogram %d vs oracle %d (rel %.3f)", q, got, exact, rel)
		}
	}
	// The mean is exact (sum is tracked), not bucket-approximated.
	var sum int64
	for _, v := range samples {
		sum += v
	}
	if got, want := s.Mean(), float64(sum)/float64(len(samples)); got != want {
		t.Errorf("mean %v, want exact %v", got, want)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// under -race and checks conservation of observations.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines = 8
	const perG = 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration((g+1)*(i+1)) * time.Nanosecond)
			}
		}(g)
	}
	// Concurrent readers while recording is in flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			_ = s.Quantile(0.99)
			_ = s.Mean()
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count %d, want %d", got, goroutines*perG)
	}
	s := h.Snapshot()
	var bucketsSum uint64
	for _, bc := range s.Counts {
		bucketsSum += bc.Count
	}
	if bucketsSum != goroutines*perG {
		t.Fatalf("bucket sum %d, want %d", bucketsSum, goroutines*perG)
	}
}

// TestHistogramMerge merges per-shard histograms and checks the merged
// quantiles equal those of one histogram fed the union of samples.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shards := make([]*Histogram, 4)
	union := NewHistogram()
	for i := range shards {
		shards[i] = NewHistogram()
	}
	for i := 0; i < 100000; i++ {
		ns := time.Duration(rng.Intn(1_000_000)+1) * time.Nanosecond
		shards[i%len(shards)].Observe(ns)
		union.Observe(ns)
	}
	merged := shards[0].Snapshot()
	for _, sh := range shards[1:] {
		merged.Merge(sh.Snapshot())
	}
	want := union.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum {
		t.Fatalf("merged count/sum %d/%d, want %d/%d", merged.Count, merged.Sum, want.Count, want.Sum)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Errorf("q=%v: merged %d != union %d", q, merged.Quantile(q), want.Quantile(q))
		}
	}
	// Merging through obs.Merge at the snapshot level agrees too.
	a := Snapshot{Metrics: []Metric{{Name: "h", Kind: KindHistogram, Hist: shards[0].Snapshot()}}}
	b := Snapshot{Metrics: []Metric{{Name: "h", Kind: KindHistogram, Hist: shards[1].Snapshot()}}}
	m := Merge(a, b)
	if got := m.Metrics[0].Hist.Count; got != shards[0].Count()+shards[1].Count() {
		t.Fatalf("snapshot-level merge count %d", got)
	}
}

// TestNilHistogram: disabled-telemetry paths hold nil pointers; every
// method must be a no-op, not a panic.
func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 {
		t.Fatal("nil histogram count")
	}
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	if q := QuantilesOf(nil); q.Count != 0 {
		t.Fatal("QuantilesOf(nil)")
	}
}
