package obs

import (
	"sort"
	"sync"
	"time"
)

// Event types emitted across the stack. Each is a lifecycle moment worth
// correlating with a latency spike: the telemetry answers "what was the
// store doing when that p999 happened".
const (
	EventFlush         = "flush"          // immutable memtable → L0 sstable
	EventCompaction    = "compaction"     // level-N → level-N+1 rewrite
	EventSeal          = "membuffer-seal" // membuffer generation switch (drain start)
	EventResize        = "resize-epoch"   // §4.4 adaptive split change
	EventWALRotate     = "wal-rotate"     // new WAL segment opened
	EventWALStall      = "wal-stall"      // group-commit follower waited on a leader fsync
	EventCachePressure = "cache-pressure" // block/table cache evicting under load
	EventSnapshotPin   = "snapshot-pin"   // O(1) snapshot sealed + seq bound pinned
	EventSnapshotUnpin = "snapshot-unpin" // snapshot closed, version chains may collapse
	EventShardFanout   = "shard-fanout"   // cross-shard batch/scan fan-out
	EventShardSplit    = "shard-split"    // hot shard split at a sampled key (epoch bump)
	EventShardMerge    = "shard-merge"    // cold neighbor shards merged (epoch bump)
	EventShardQueue    = "shard-queue"    // committer queue depth crossed a high-water mark
	EventRingUp        = "ring-up"        // cluster member became reachable
	EventRingDown      = "ring-down"      // cluster member lost
	EventRingEpoch     = "ring-epoch"     // ring config epoch observed/changed
	EventHintReplay    = "hint-replay"    // hinted-handoff log drained to a healed peer
)

// Event is one structured record in the bounded event log.
type Event struct {
	Seq    uint64        `json:"seq"`
	Time   time.Time     `json:"time"`
	Type   string        `json:"type"`
	Dur    time.Duration `json:"dur_ns,omitempty"`
	Bytes  int64         `json:"bytes,omitempty"`
	Keys   int64         `json:"keys,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// EventLog is a bounded ring buffer of Events plus per-type totals. Emit
// is cheap (one short critical section, no allocation after warm-up) and
// safe from any goroutine; when the ring is full the oldest events are
// overwritten but the totals keep counting. A nil *EventLog ignores
// Emit, so disabled-telemetry paths hold nil instead of branching.
type EventLog struct {
	mu     sync.Mutex
	buf    []Event
	cap    int
	next   uint64 // total events ever emitted == next seq
	counts map[string]uint64
}

// DefaultEventLogSize is the ring capacity layers use unless configured.
const DefaultEventLogSize = 512

// NewEventLog returns a ring holding the most recent capacity events
// (DefaultEventLogSize when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogSize
	}
	return &EventLog{cap: capacity, counts: make(map[string]uint64)}
}

// Emit records an event, stamping Seq and (when zero) Time.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	e.Seq = l.next
	l.next++
	l.counts[e.Type]++
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
	} else {
		l.buf[int(e.Seq)%l.cap] = e
	}
	l.mu.Unlock()
}

// Recent returns up to n of the newest events, oldest first. n <= 0
// means everything still in the ring.
func (l *EventLog) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	start := uint64(0)
	if l.next > uint64(len(l.buf)) {
		start = l.next - uint64(len(l.buf))
	}
	for seq := start; seq < l.next; seq++ {
		out = append(out, l.buf[int(seq)%l.cap])
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Total returns the number of events ever emitted (not just retained).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Counts returns a copy of the per-type totals.
func (l *EventLog) Counts() map[string]uint64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}

// MergeEvents interleaves event slices by timestamp (per-shard and
// store+server logs presented as one timeline), keeping at most n
// newest when n > 0.
func MergeEvents(n int, logs ...[]Event) []Event {
	var out []Event
	for _, l := range logs {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// EventCountMetrics renders per-type totals as counter metrics
// (flodb_events_total{type="..."}) for the /metrics exposition, summing
// across the given logs.
func EventCountMetrics(logs ...*EventLog) []Metric {
	sum := make(map[string]uint64)
	for _, l := range logs {
		for t, c := range l.Counts() {
			sum[t] += c
		}
	}
	types := make([]string, 0, len(sum))
	for t := range sum {
		types = append(types, t)
	}
	sort.Strings(types)
	out := make([]Metric, 0, len(types))
	for _, t := range types {
		out = append(out, Metric{
			Name:  `flodb_events_total{type="` + t + `"}`,
			Help:  "Structured events emitted, by type.",
			Kind:  KindCounter,
			Value: int64(sum[t]),
		})
	}
	return out
}
