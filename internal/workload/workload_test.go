package workload

import (
	"math/rand"
	"testing"
)

func TestMixValidAndSample(t *testing.T) {
	for _, m := range []Mix{WriteOnly, ReadOnly, Balanced, ScanWrite, ReadUpdate, ScanWithPct(25)} {
		if !m.Valid() {
			t.Fatalf("mix %+v does not sum to 100", m)
		}
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[Op]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Balanced.Sample(rng)]++
	}
	if got := float64(counts[OpGet]) / n; got < 0.48 || got > 0.52 {
		t.Fatalf("get fraction %f, want ~0.50", got)
	}
	if got := float64(counts[OpInsert]) / n; got < 0.23 || got > 0.27 {
		t.Fatalf("insert fraction %f, want ~0.25", got)
	}
	if counts[OpScan] != 0 {
		t.Fatal("balanced mix should have no scans")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpGet: "get", OpInsert: "insert", OpDelete: "delete", OpScan: "scan", Op(9): "op?"} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q", op, op.String())
		}
	}
}

func TestUniformCoversKeyspace(t *testing.T) {
	g := NewUniform(64)
	rng := rand.New(rand.NewSource(2))
	seen := map[string]bool{}
	dst := make([]byte, 8)
	for i := 0; i < 10000; i++ {
		seen[string(g.NextKey(rng, dst))] = true
	}
	if len(seen) != 64 {
		t.Fatalf("uniform over 64 keys produced %d distinct keys", len(seen))
	}
	if g.Keys() != 64 {
		t.Fatal("Keys() wrong")
	}
}

func TestUniformKeyAtMatchesNextKeySpace(t *testing.T) {
	g := NewUniform(1000)
	dst1, dst2 := make([]byte, 8), make([]byte, 8)
	rng := rand.New(rand.NewSource(3))
	// Every NextKey must be some KeyAt(i).
	valid := map[string]bool{}
	for i := uint64(0); i < 1000; i++ {
		valid[string(g.KeyAt(i, dst1))] = true
	}
	for i := 0; i < 5000; i++ {
		if !valid[string(g.NextKey(rng, dst2))] {
			t.Fatal("NextKey produced a key outside KeyAt's space")
		}
	}
}

func TestSequentialAscending(t *testing.T) {
	g := NewSequential(100)
	dst := make([]byte, 8)
	var prev []byte
	for i := 0; i < 100; i++ {
		k := g.NextKey(nil, dst)
		if prev != nil && string(prev) >= string(k) {
			t.Fatal("sequential keys not ascending")
		}
		prev = append(prev[:0], k...)
	}
	// Wraps around.
	k := g.NextKey(nil, dst)
	if string(k) >= string(prev) {
		// wrapped to key 0
	} else {
		t.Log("wrapped as expected")
	}
}

func TestHotSetSkew(t *testing.T) {
	g := NewHotSet(1000, 0.02, 98)
	if g.HotKeys() != 20 {
		t.Fatalf("hot keys = %d, want 20", g.HotKeys())
	}
	rng := rand.New(rand.NewSource(4))
	dst := make([]byte, 8)
	hot := map[string]bool{}
	for i := uint64(0); i < 20; i++ {
		hot[string(PutUint64(dst, i))] = true
	}
	hotCount := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if hot[string(g.NextKey(rng, dst))] {
			hotCount++
		}
	}
	frac := float64(hotCount) / n
	if frac < 0.96 || frac > 0.999 {
		t.Fatalf("hot fraction %f, want ~0.98", frac)
	}
}

func TestHotSetTinyKeyspace(t *testing.T) {
	g := NewHotSet(2, 0.02, 98) // hot set clamps to 1 key
	if g.HotKeys() != 1 {
		t.Fatalf("HotKeys = %d", g.HotKeys())
	}
	rng := rand.New(rand.NewSource(5))
	dst := make([]byte, 8)
	for i := 0; i < 100; i++ {
		g.NextKey(rng, dst) // must not panic
	}
}

func TestNeighborhoodLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := NewNeighborhood(1<<20, 10) // batches within 1024
	var scratch []uint64
	for trial := 0; trial < 100; trial++ {
		batch := g.NextBatch(rng, 5, scratch)
		if len(batch) != 5 {
			t.Fatal("wrong batch size")
		}
		min, max := batch[0], batch[0]
		for _, k := range batch {
			if k < min {
				min = k
			}
			if k > max {
				max = k
			}
		}
		if max-min >= 1024 {
			t.Fatalf("batch spread %d exceeds neighborhood 1024", max-min)
		}
		scratch = batch
	}
	// bits >= 64 disables locality.
	g2 := NewNeighborhood(1<<20, 64)
	b := g2.NextBatch(rng, 5, nil)
	if len(b) != 5 {
		t.Fatal("unbounded batch size wrong")
	}
}

func TestValueDeterministic(t *testing.T) {
	v1 := Value(nil, 256, 7)
	v2 := Value(make([]byte, 0, 256), 256, 7)
	if len(v1) != 256 || len(v2) != 256 {
		t.Fatal("value size wrong")
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("value not deterministic")
		}
	}
	// Reuse without allocation.
	v3 := Value(v1, 128, 9)
	if len(v3) != 128 {
		t.Fatal("shrunk value wrong size")
	}
}

func TestPutUint64MatchesBigEndian(t *testing.T) {
	dst := make([]byte, 8)
	k := PutUint64(dst, 0x0102030405060708)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := range want {
		if k[i] != want[i] {
			t.Fatalf("byte %d = %x", i, k[i])
		}
	}
}

func TestZipfianSkewAndRange(t *testing.T) {
	const n = 1 << 16
	gen := NewZipfian(n, DefaultZipfS)
	rng := rand.New(rand.NewSource(1))
	dst := make([]byte, DefaultKeySize)
	counts := make(map[uint64]int)
	for i := 0; i < 1<<14; i++ {
		k := gen.NextKey(rng, dst)
		counts[uint64(k[0])<<56|uint64(k[1])<<48|uint64(k[2])<<40|uint64(k[3])<<32|
			uint64(k[4])<<24|uint64(k[5])<<16|uint64(k[6])<<8|uint64(k[7])]++
	}
	// Heavy skew: the single most popular key must carry far more than a
	// uniform draw's expected share (~0.25 hits here).
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if best < 100 {
		t.Fatalf("zipfian head too flat: hottest key drew %d of %d", best, 1<<14)
	}
	if gen.Keys() != n {
		t.Fatalf("Keys() = %d", gen.Keys())
	}
}

func TestHotShardZipfianClusters(t *testing.T) {
	const n = 1 << 16
	gen := NewHotShardZipfian(n, DefaultZipfS)
	rng := rand.New(rand.NewSource(2))
	dst := make([]byte, DefaultKeySize)
	// Clustered mode maps rank r to key r: every draw stays inside
	// [0, n), i.e. the bottom contiguous slice of the keyspace — one
	// shard of any coarse range partition.
	inHead := 0
	const draws = 1 << 12
	for i := 0; i < draws; i++ {
		k := gen.NextKey(rng, dst)
		var v uint64
		for _, b := range k {
			v = v<<8 | uint64(b)
		}
		if v >= n {
			t.Fatalf("clustered draw %d escaped the keyspace: %d", i, v)
		}
		if v < n/64 {
			inHead++
		}
	}
	// The zipf head concentrates: most draws hit the hottest 1/64th.
	if inHead < draws/2 {
		t.Fatalf("clustered head too flat: %d of %d draws in the hot range", inHead, draws)
	}
}

func TestHotShardWriteMixValid(t *testing.T) {
	if !HotShardWrite.Valid() {
		t.Fatal("HotShardWrite does not sum to 100")
	}
	rng := rand.New(rand.NewSource(3))
	writes := 0
	for i := 0; i < 1000; i++ {
		if HotShardWrite.Sample(rng) == OpInsert {
			writes++
		}
	}
	if writes < 800 {
		t.Fatalf("HotShardWrite drew only %d inserts of 1000", writes)
	}
}
