// Package workload generates the key streams and operation mixes of the
// paper's evaluation (§5.1–§5.2):
//
//   - 8-byte keys, 256-byte values;
//   - keys drawn uniformly at random unless stated otherwise;
//   - the skewed experiments access 2% of the dataset with 98% of
//     operations (§5.4);
//   - mixes: write-only (50% insert / 50% delete), read-only, balanced
//     (50r/25i/25d), one-writer-many-readers, and scan-write (95% update /
//     5% scan of 100 keys).
//
// Generators are deterministic per (seed, thread) so runs are repeatable,
// and allocation-free on the hot path.
package workload

import (
	"math/rand"
)

// DefaultKeySize and DefaultValueSize are the paper's record shape.
const (
	DefaultKeySize   = 8
	DefaultValueSize = 256
)

// Op is one operation kind in a mix.
type Op int

const (
	// OpGet is a point read.
	OpGet Op = iota
	// OpInsert writes a (possibly new) key.
	OpInsert
	// OpDelete removes a key.
	OpDelete
	// OpScan reads a bounded range.
	OpScan
	// OpBatch applies an atomic write batch of RunOptions.BatchSize
	// mutations through Store.Apply.
	OpBatch
	// OpSnapshot takes a Store.Snapshot, performs
	// RunOptions.SnapshotReads point reads through it, and releases it —
	// the multi-request repeatable-read shape of a session pinned to one
	// view.
	OpSnapshot
	// OpSync calls Store.Sync — the durability barrier promoting every
	// previously-acked buffered write to durable in one group-committed
	// disk barrier.
	OpSync
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpBatch:
		return "batch"
	case OpSnapshot:
		return "snapshot"
	case OpSync:
		return "sync"
	default:
		return "op?"
	}
}

// Mix is a discrete distribution over operations, in percent.
type Mix struct {
	GetPct    int
	InsertPct int
	DeletePct int
	ScanPct   int
	BatchPct  int
	SnapPct   int
	SyncPct   int
}

// The paper's workload mixes.
var (
	// WriteOnly is §5.2's write-only workload: 50% inserts, 50% deletes.
	WriteOnly = Mix{InsertPct: 50, DeletePct: 50}
	// ReadOnly is §5.2's read-only workload.
	ReadOnly = Mix{GetPct: 100}
	// Balanced is the mixed workload: 50% reads, 25% inserts, 25% deletes.
	Balanced = Mix{GetPct: 50, InsertPct: 25, DeletePct: 25}
	// ScanWrite is the 95% update / 5% scan mix of Fig 13.
	ScanWrite = Mix{InsertPct: 95, ScanPct: 5}
	// ReadUpdate is the 50/50 mix of the skew experiment (Fig 16).
	ReadUpdate = Mix{GetPct: 50, InsertPct: 50}
	// BatchWrite is a write-only workload where every operation is an
	// atomic write batch (loader/ingest shape: RocksDB's WriteBatch path).
	BatchWrite = Mix{BatchPct: 100}
	// BatchRead mixes batched ingest with point reads, the
	// read-while-bulk-loading shape.
	BatchRead = Mix{GetPct: 50, BatchPct: 50}
	// SnapshotRead models sessions that pin a repeatable-read view amid a
	// write-heavy stream: 2% of operations take a snapshot and read
	// through it, the rest are live reads and inserts. Snapshots are
	// O(1) everywhere now (FloDB seals and pins a seq bound instead of
	// flushing), so the mix measures read-view traffic — the apibench
	// snap-read column is the regression fence for that property.
	SnapshotRead = Mix{GetPct: 48, InsertPct: 50, SnapPct: 2}
	// DurableWrite models a commit-heavy ingest where every mutation must
	// be crash-durable before it is acknowledged: a write-only stream with
	// RunOptions.SyncWrites making each insert a Sync-class commit. With
	// group commit the concurrent committers coalesce onto shared fsyncs;
	// without it this mix flattens every store to disk-barrier speed.
	DurableWrite = Mix{InsertPct: 100}
	// BufferedSyncWrite is the batch-load shape: a stream of Buffered
	// inserts punctuated by Sync barriers (5% of ops) that promote the
	// acked window wholesale.
	BufferedSyncWrite = Mix{InsertPct: 95, SyncPct: 5}
	// WriteBurst is the ingest phase of the phase-shifting workload:
	// pure inserts, the shape that wants the largest Membuffer (§4.4 —
	// every update that completes in the hash table is O(1)).
	WriteBurst = Mix{InsertPct: 100}
	// ScanHeavy is the scan phase of the phase-shifting workload: half
	// the operations are range scans. Every master scan must drain the
	// Membuffer before taking its sequence point, so this shape wants
	// the SMALLEST Membuffer — the adaptive controller's other pole.
	ScanHeavy = Mix{InsertPct: 50, ScanPct: 50}
	// MixedOps is the phase-shifting workload's steady-state shape: the
	// balanced read/write mix with an occasional range scan — the
	// report-query-amid-OLTP blend a production store actually serves.
	// Even 4% scans make an oversized Membuffer expensive (each master
	// scan drains it), so this mix separates the fixed fractions that a
	// scan-free balance would leave indistinguishable.
	MixedOps = Mix{GetPct: 47, InsertPct: 24, DeletePct: 25, ScanPct: 4}
	// HotShardWrite is the write-heavy mix for the sharded-engine skew
	// experiments: paired with a clustered generator (NewHotShardZipfian,
	// or HotSet's contiguous hot range) it concentrates the write stream
	// on one shard of a range-partitioned store, making skew-induced
	// shard imbalance measurable — the workload where partitioned designs
	// win or lose (F2, Kanellis et al.).
	HotShardWrite = Mix{InsertPct: 90, GetPct: 10}
)

// ScanWithPct builds an update/scan mix with the given scan percentage
// (the Fig 14 sweep).
func ScanWithPct(scanPct int) Mix {
	return Mix{InsertPct: 100 - scanPct, ScanPct: scanPct}
}

// Valid reports whether the mix sums to 100%.
func (m Mix) Valid() bool {
	return m.GetPct+m.InsertPct+m.DeletePct+m.ScanPct+m.BatchPct+m.SnapPct+m.SyncPct == 100
}

// Sample draws an operation.
func (m Mix) Sample(rng *rand.Rand) Op {
	r := rng.Intn(100)
	if r < m.GetPct {
		return OpGet
	}
	r -= m.GetPct
	if r < m.InsertPct {
		return OpInsert
	}
	r -= m.InsertPct
	if r < m.DeletePct {
		return OpDelete
	}
	r -= m.DeletePct
	if r < m.ScanPct {
		return OpScan
	}
	r -= m.ScanPct
	if r < m.BatchPct {
		return OpBatch
	}
	r -= m.BatchPct
	if r < m.SnapPct {
		return OpSnapshot
	}
	return OpSync
}

// KeyGen produces keys from a keyspace of Keys() distinct values. NextKey
// writes the next key into dst (which must have DefaultKeySize capacity)
// and returns it.
type KeyGen interface {
	NextKey(rng *rand.Rand, dst []byte) []byte
	Keys() uint64
}

// spreadIndex maps a dense index to a key spread over the 64-bit space.
// The fixed odd multiplier is a bijection mod 2^64, so distinct indices
// give distinct keys while filling every Membuffer partition uniformly —
// matching the paper's uniform draws over a large key space.
func spreadIndex(i uint64) uint64 { return i * 0x9e3779b97f4a7c15 }

// PutUint64 writes v big-endian into dst[0:8] and returns dst[0:8].
func PutUint64(dst []byte, v uint64) []byte {
	_ = dst[7]
	dst[0] = byte(v >> 56)
	dst[1] = byte(v >> 48)
	dst[2] = byte(v >> 40)
	dst[3] = byte(v >> 32)
	dst[4] = byte(v >> 24)
	dst[5] = byte(v >> 16)
	dst[6] = byte(v >> 8)
	dst[7] = byte(v)
	return dst[:8]
}

// Uniform draws keys uniformly from a keyspace of n distinct keys.
type Uniform struct {
	n uint64
}

// NewUniform builds a uniform generator over n keys.
func NewUniform(n uint64) *Uniform { return &Uniform{n: n} }

// NextKey draws a key.
func (u *Uniform) NextKey(rng *rand.Rand, dst []byte) []byte {
	return PutUint64(dst, spreadIndex(uint64(rng.Int63n(int64(u.n)))))
}

// Keys returns the keyspace size.
func (u *Uniform) Keys() uint64 { return u.n }

// KeyAt returns the i-th key of the space (for initialization loops).
func (u *Uniform) KeyAt(i uint64, dst []byte) []byte {
	return PutUint64(dst, spreadIndex(i))
}

// Sequential yields keys in ascending key order (the paper's read-only
// initialization inserts "the same data in sorted order", §5.2).
type Sequential struct {
	n    uint64
	next uint64
}

// NewSequential builds a sequential generator over n keys.
func NewSequential(n uint64) *Sequential { return &Sequential{n: n} }

// NextKey returns the next key in ascending order, wrapping at n.
func (s *Sequential) NextKey(_ *rand.Rand, dst []byte) []byte {
	i := s.next % s.n
	s.next++
	// Ascending in FINAL key order: sort the spread images by sorting the
	// pre-image through a rank... a simple increasing counter already
	// yields ascending big-endian keys; sequential mode skips spreading.
	return PutUint64(dst, i)
}

// Keys returns the keyspace size.
func (s *Sequential) Keys() uint64 { return s.n }

// HotSet draws hotPct% of operations from a hot subset of hotFrac of the
// keyspace — the paper's "2% of the dataset is accessed by 98% of
// operations" (§5.4). The hot keys form a CONTIGUOUS key range (a shared
// prefix), matching the skew shape the paper calls out as FloDB's
// partitioning worst case ("if the data skew concerns a certain key
// range", §4.3) — this is what produces Fig 16's small-memory penalty.
type HotSet struct {
	n       uint64
	hotKeys uint64
	hotPct  int
}

// NewHotSet builds the paper's skewed generator: hotFrac of the keys
// receive hotPct% of accesses.
func NewHotSet(n uint64, hotFrac float64, hotPct int) *HotSet {
	hk := uint64(float64(n) * hotFrac)
	if hk < 1 {
		hk = 1
	}
	return &HotSet{n: n, hotKeys: hk, hotPct: hotPct}
}

// NextKey draws from the hot set with probability hotPct%. Hot keys are
// sequential (clustered prefixes); cold keys are spread like Uniform's.
func (h *HotSet) NextKey(rng *rand.Rand, dst []byte) []byte {
	if rng.Intn(100) < h.hotPct {
		return PutUint64(dst, uint64(rng.Int63n(int64(h.hotKeys))))
	}
	i := h.hotKeys + uint64(rng.Int63n(int64(h.n-h.hotKeys)))
	return PutUint64(dst, spreadIndex(i))
}

// Keys returns the keyspace size.
func (h *HotSet) Keys() uint64 { return h.n }

// HotKeys returns the hot-set cardinality.
func (h *HotSet) HotKeys() uint64 { return h.hotKeys }

// Zipfian draws keys with Zipf-distributed popularity: rank r is drawn
// with probability ∝ 1/(1+r)^s (the YCSB-style skew shape), so a small
// head of keys absorbs most operations. By default ranks are SPREAD over
// the 64-bit key space (popular keys scatter uniformly, like hashed user
// IDs): heavy popularity skew with no range locality, the case range
// partitioning handles gracefully. NewHotShardZipfian instead maps rank
// r to key r directly, clustering the hot head into one contiguous range
// — and therefore onto one shard of a range-partitioned store — the
// adversarial skew shape for sharding (and for FloDB's own Membuffer
// partitions, §4.3).
type Zipfian struct {
	n         uint64
	s         float64
	clustered bool

	// The stdlib Zipf sampler binds to one *rand.Rand; the harness hands
	// NextKey the per-thread rng, so the sampler is built lazily on
	// first use and rebuilt if a different rng ever appears.
	rng *rand.Rand
	z   *rand.Zipf
}

// DefaultZipfS is the default Zipf exponent: a YCSB-like heavy skew
// (~theta 0.99 in YCSB terms corresponds to s just above 1).
const DefaultZipfS = 1.1

// NewZipfian builds a spread Zipfian generator over n keys with exponent
// s (s <= 1 takes DefaultZipfS; the stdlib sampler requires s > 1).
func NewZipfian(n uint64, s float64) *Zipfian {
	if s <= 1 {
		s = DefaultZipfS
	}
	if n < 1 {
		n = 1
	}
	return &Zipfian{n: n, s: s}
}

// NewHotShardZipfian builds a clustered Zipfian generator: rank == key,
// so the popular head occupies one contiguous range at the bottom of the
// keyspace and lands on a single shard under range partitioning.
func NewHotShardZipfian(n uint64, s float64) *Zipfian {
	z := NewZipfian(n, s)
	z.clustered = true
	return z
}

// NextKey draws a key. Not safe for concurrent use — the harness gives
// each thread its own generator.
func (z *Zipfian) NextKey(rng *rand.Rand, dst []byte) []byte {
	if z.z == nil || z.rng != rng {
		z.rng = rng
		z.z = rand.NewZipf(rng, z.s, 1, z.n-1)
	}
	rank := z.z.Uint64()
	if z.clustered {
		return PutUint64(dst, rank)
	}
	return PutUint64(dst, spreadIndex(rank))
}

// Keys returns the keyspace size.
func (z *Zipfian) Keys() uint64 { return z.n }

// Neighborhood draws batches of keys within a bounded distance of each
// other — Fig 8's neighborhood experiment, where "a neighborhood size of n
// means all keys in a multi-insert are at maximum 2^n distance from each
// other".
type Neighborhood struct {
	n    uint64
	bits uint // log2 of the neighborhood diameter; 64 = no locality
}

// NewNeighborhood builds a generator over n keys where each batch is
// confined to a 2^bits-wide window. bits >= 64 disables locality.
func NewNeighborhood(n uint64, bits uint) *Neighborhood {
	return &Neighborhood{n: n, bits: bits}
}

// NextBatch fills batch with keyCount keys inside one window.
func (g *Neighborhood) NextBatch(rng *rand.Rand, keyCount int, scratch []uint64) []uint64 {
	scratch = scratch[:0]
	if g.bits >= 64 {
		for i := 0; i < keyCount; i++ {
			scratch = append(scratch, rng.Uint64())
		}
		return scratch
	}
	width := uint64(1) << g.bits
	base := rng.Uint64() &^ (width - 1)
	for i := 0; i < keyCount; i++ {
		scratch = append(scratch, base+uint64(rng.Int63n(int64(width))))
	}
	return scratch
}

// Value fills dst with a deterministic pattern of the given size,
// allocating only when dst is too small.
func Value(dst []byte, size int, tag uint64) []byte {
	if cap(dst) < size {
		dst = make([]byte, size)
	}
	dst = dst[:size]
	for i := range dst {
		dst[i] = byte(tag + uint64(i))
	}
	return dst
}
