package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"flodb/internal/kv"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Op: OpPing},
		{ID: 7, Op: OpPut, Durability: kv.DurabilitySync, TimeoutNanos: 123456789, Payload: []byte("klen-key-value")},
		{ID: 1 << 40, Op: OpIterNext, Handle: 99, Payload: []byte{0}},
		{ID: 0, Op: OpCancel, Payload: []byte{42}},
	}
	var frames []byte
	for i := range reqs {
		frames = AppendRequest(frames, &reqs[i])
	}
	br := bufio.NewReader(bytes.NewReader(frames))
	var buf []byte
	for i := range reqs {
		body, err := ReadFrame(br, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := ParseRequest(body)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		want := reqs[i]
		if got.ID != want.ID || got.Op != want.Op || got.Durability != want.Durability ||
			got.TimeoutNanos != want.TimeoutNanos || got.Handle != want.Handle ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(br, nil); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{ID: 1, Status: StatusOK, Payload: []byte("value")},
		{ID: 2, Status: StatusSnapshotReleased, Payload: []byte("gone")},
		{ID: 1 << 50, Status: StatusErr},
	}
	var frames []byte
	for i := range resps {
		frames = AppendResponse(frames, &resps[i])
	}
	br := bufio.NewReader(bytes.NewReader(frames))
	for i := range resps {
		body, err := ReadFrame(br, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := ParseResponse(body)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		want := resps[i]
		if got.ID != want.ID || got.Status != want.Status || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	frame := binary.AppendUvarint(nil, MaxFrame+1)
	_, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversize frame: %v, want ErrBadFrame", err)
	}
}

func TestParseRequestRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                 // empty
		{0x01},             // id only
		{0x01, 0xFF, 0x00}, // bad opcode
		{0x01, 0x02, 0x77}, // bad durability
		{0x01, 0x02, 0x00}, // missing timeout/handle
	}
	for i, c := range cases {
		if _, err := ParseRequest(c); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("case %d: %v, want ErrBadFrame", i, err)
		}
	}
}

func TestBoundsPreserveNil(t *testing.T) {
	var p []byte
	p = AppendBound(p, nil)
	p = AppendBound(p, []byte{})
	p = AppendBound(p, []byte("k"))
	b, rest, err := ReadBound(p)
	if err != nil || b != nil {
		t.Fatalf("nil bound: %v %v", b, err)
	}
	b, rest, err = ReadBound(rest)
	if err != nil || b == nil || len(b) != 0 {
		t.Fatalf("empty bound: %v %v", b, err)
	}
	b, rest, err = ReadBound(rest)
	if err != nil || string(b) != "k" {
		t.Fatalf("real bound: %q %v", b, err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %x", rest)
	}
}

func TestPairsRoundTrip(t *testing.T) {
	in := []kv.Pair{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("bb"), Value: nil},
		{Key: []byte{}, Value: []byte("v")},
	}
	p := AppendPairs(nil, in)
	out, rest, err := ReadPairs(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %x", rest)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d pairs, want %d", len(out), len(in))
	}
	for i := range in {
		if !bytes.Equal(out[i].Key, in[i].Key) || !bytes.Equal(out[i].Value, in[i].Value) {
			t.Fatalf("pair %d: got %q=%q want %q=%q", i, out[i].Key, out[i].Value, in[i].Key, in[i].Value)
		}
	}
	// The decoded pairs must be copies, not aliases of the frame buffer.
	for i := range p {
		p[i] = 0xAA
	}
	if !bytes.Equal(out[0].Key, []byte("a")) {
		t.Fatal("decoded pair aliases the frame buffer")
	}
}

func TestStatusErrorMapping(t *testing.T) {
	cases := []struct {
		err      error
		status   Status
		sentinel error
	}{
		{kv.ErrClosed, StatusClosed, kv.ErrClosed},
		{kv.ErrSnapshotReleased, StatusSnapshotReleased, kv.ErrSnapshotReleased},
		{kv.ErrNotSupported, StatusNotSupported, kv.ErrNotSupported},
		{context.Canceled, StatusCanceled, context.Canceled},
		{context.DeadlineExceeded, StatusDeadline, context.DeadlineExceeded},
		{errors.New("boom"), StatusErr, nil},
	}
	for _, c := range cases {
		status, msg := StatusOf(c.err)
		if status != c.status {
			t.Fatalf("StatusOf(%v) = %v, want %v", c.err, status, c.status)
		}
		back := ErrOf(status, msg)
		if c.sentinel != nil && !errors.Is(back, c.sentinel) {
			t.Fatalf("ErrOf(%v, %q) = %v, does not wrap %v", status, msg, back, c.sentinel)
		}
	}
	// Wrapped sentinels map the same as bare ones.
	wrapped := errorsJoin(kv.ErrClosed)
	if s, _ := StatusOf(wrapped); s != StatusClosed {
		t.Fatalf("wrapped ErrClosed: %v", s)
	}
	if s, _ := StatusOf(nil); s != StatusOK {
		t.Fatalf("nil error: %v", s)
	}
	if ErrOf(StatusOK, "") != nil {
		t.Fatal("ErrOf(StatusOK) != nil")
	}
}

func errorsJoin(err error) error { return &wrapErr{err} }

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "ctx: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }

func TestOpStrings(t *testing.T) {
	seen := map[string]bool{}
	for op := Op(1); op < OpMax; op++ {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("op %d: duplicate or empty name %q", op, s)
		}
		seen[s] = true
	}
}
