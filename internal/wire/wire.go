// Package wire defines flodbd's hand-rolled binary protocol: the frame
// format, request/response layout, opcodes, and the status codes that
// carry the kv error taxonomy across a connection. It is deliberately
// dependency-free (stdlib only) and symmetric — internal/server decodes
// what internal/client encodes and vice versa — so the two ends can never
// drift apart without a test in this package failing.
//
// Framing: every message is one frame,
//
//	uvarint(len(body)) | body
//
// with body capped at MaxFrame. Inside a frame:
//
//	request:  uvarint(id) | op(1) | durability(1) | uvarint(timeoutNanos) | uvarint(handle) | payload
//	response: uvarint(id) | status(1) | payload
//
// The id matches responses to pipelined requests: a client may have many
// requests in flight on one connection, and the server answers each as it
// completes, in any order. durability carries the per-operation
// kv.Durability class (0 = the store default). timeoutNanos is the
// REMAINING time of the client's context deadline at send time — relative,
// not absolute, so the two ends need no clock agreement — and 0 means no
// deadline. handle addresses server-side state: 0 is the live view, other
// values name a snapshot or iterator lease returned by an earlier
// OpSnapOpen/OpIterOpen on the same connection.
//
// Payload layouts are op-specific; the Append*/Read* helpers in this file
// are the shared vocabulary. Scan bounds use a presence byte so a nil
// (open) bound survives the trip distinct from an empty key.
package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"flodb/internal/kv"
	"flodb/internal/obs"
)

// MaxFrame bounds one frame's body: oversized frames are a protocol
// error, not an allocation. Large ranges must stream through iterator
// chunks instead of one materializing Scan response.
const MaxFrame = 64 << 20

// Op identifies a request's operation.
type Op uint8

// The opcodes. OpCancel is special: it acknowledges nothing — it asks the
// server to cancel the in-flight request whose id is in the payload, and
// the canceled request itself answers (with StatusCanceled if the cancel
// won the race).
const (
	OpPing Op = 1 + iota
	OpGet
	OpPut
	OpDelete
	OpApply
	OpScan
	OpIterOpen
	OpIterNext
	OpIterClose
	OpSnapOpen
	OpSnapClose
	OpSync
	OpStats
	OpCheckpoint
	OpCancel

	// The replication plane (cluster mode). OpVPut and OpVApply are
	// version-gated conditional writes: the payload carries VRecords and
	// the server applies each only if its version exceeds the stored
	// copy's, under per-key stripe locks — which makes replica writes,
	// read-repair pushes, and hint replay idempotent and reorderable.
	// OpHealth is the prober's heartbeat; its response carries the node's
	// identity and ring epoch so peers from a different ring
	// configuration are detected, not silently mixed.
	OpVPut
	OpVApply
	OpHealth

	// OpTelemetry returns the node's observability snapshot — per-op
	// latency quantiles, the merged metric registry, recent structured
	// events — as a TelemetryPayload. A cold diagnostic path like
	// OpStats; flodbctl top renders it.
	OpTelemetry

	// OpMax bounds the opcode space (for per-opcode counters).
	OpMax
)

// String names the opcode (stats keys, log lines).
func (op Op) String() string {
	switch op {
	case OpPing:
		return "ping"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpApply:
		return "apply"
	case OpScan:
		return "scan"
	case OpIterOpen:
		return "iter-open"
	case OpIterNext:
		return "iter-next"
	case OpIterClose:
		return "iter-close"
	case OpSnapOpen:
		return "snap-open"
	case OpSnapClose:
		return "snap-close"
	case OpSync:
		return "sync"
	case OpStats:
		return "stats"
	case OpCheckpoint:
		return "checkpoint"
	case OpCancel:
		return "cancel"
	case OpVPut:
		return "vput"
	case OpVApply:
		return "vapply"
	case OpHealth:
		return "health"
	case OpTelemetry:
		return "telemetry"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Status classifies a response: OK, or which error crossed the wire.
type Status uint8

const (
	StatusOK Status = iota
	// StatusErr is a generic failure; the payload is the error message.
	StatusErr
	// StatusBadRequest reports a malformed or out-of-contract request.
	StatusBadRequest
	// StatusClosed maps kv.ErrClosed.
	StatusClosed
	// StatusSnapshotReleased maps kv.ErrSnapshotReleased (including a
	// lease expired by the server's idle janitor).
	StatusSnapshotReleased
	// StatusNotSupported maps kv.ErrNotSupported.
	StatusNotSupported
	// StatusCanceled maps context.Canceled.
	StatusCanceled
	// StatusDeadline maps context.DeadlineExceeded (the wire deadline the
	// client's context mapped onto, or the server's own enforcement).
	StatusDeadline
	// StatusUnavailable maps kv.ErrUnavailable: a coordinator could not
	// reach enough replicas (cluster-proxy mode), as opposed to a caller
	// error.
	StatusUnavailable
)

// ErrBadFrame reports a structurally invalid frame or payload.
var ErrBadFrame = errors.New("wire: bad frame")

// Request is one decoded request frame.
type Request struct {
	ID           uint64
	Op           Op
	Durability   kv.Durability
	TimeoutNanos uint64
	Handle       uint64
	// TraceID correlates this request across tiers: the client stamps
	// the coordinator's trace (obs.EnsureTrace), the coordinator's
	// replica fan-out re-sends the same ID, and every slow-request log
	// line on every node carries it. 0 means untraced.
	TraceID uint64
	Payload []byte
}

// Response is one decoded response frame.
type Response struct {
	ID      uint64
	Status  Status
	Payload []byte
}

// AppendRequest appends r as one complete frame (length prefix included).
func AppendRequest(dst []byte, r *Request) []byte {
	var body [4*binary.MaxVarintLen64 + 2]byte
	n := binary.PutUvarint(body[:], r.ID)
	body[n] = byte(r.Op)
	n++
	body[n] = byte(r.Durability)
	n++
	n += binary.PutUvarint(body[n:], r.TimeoutNanos)
	n += binary.PutUvarint(body[n:], r.Handle)
	n += binary.PutUvarint(body[n:], r.TraceID)
	dst = binary.AppendUvarint(dst, uint64(n+len(r.Payload)))
	dst = append(dst, body[:n]...)
	return append(dst, r.Payload...)
}

// ParseRequest decodes a frame body produced by AppendRequest. The
// returned Payload aliases body.
func ParseRequest(body []byte) (Request, error) {
	var r Request
	id, n := binary.Uvarint(body)
	if n <= 0 || len(body) < n+2 {
		return r, fmt.Errorf("%w: request header", ErrBadFrame)
	}
	r.ID = id
	r.Op = Op(body[n])
	r.Durability = kv.Durability(body[n+1])
	rest := body[n+2:]
	if r.Op == 0 || r.Op >= OpMax {
		return r, fmt.Errorf("%w: opcode %d", ErrBadFrame, body[n])
	}
	if !r.Durability.Valid() {
		return r, fmt.Errorf("%w: durability %d", ErrBadFrame, body[n+1])
	}
	to, n := binary.Uvarint(rest)
	if n <= 0 {
		return r, fmt.Errorf("%w: timeout", ErrBadFrame)
	}
	rest = rest[n:]
	h, n := binary.Uvarint(rest)
	if n <= 0 {
		return r, fmt.Errorf("%w: handle", ErrBadFrame)
	}
	rest = rest[n:]
	tid, n := binary.Uvarint(rest)
	if n <= 0 {
		return r, fmt.Errorf("%w: trace id", ErrBadFrame)
	}
	r.TimeoutNanos = to
	r.Handle = h
	r.TraceID = tid
	r.Payload = rest[n:]
	return r, nil
}

// AppendResponse appends r as one complete frame (length prefix included).
func AppendResponse(dst []byte, r *Response) []byte {
	var hdr [binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[:], r.ID)
	hdr[n] = byte(r.Status)
	n++
	dst = binary.AppendUvarint(dst, uint64(n+len(r.Payload)))
	dst = append(dst, hdr[:n]...)
	return append(dst, r.Payload...)
}

// ParseResponse decodes a frame body produced by AppendResponse. The
// returned Payload aliases body.
func ParseResponse(body []byte) (Response, error) {
	var r Response
	id, n := binary.Uvarint(body)
	if n <= 0 || len(body) < n+1 {
		return r, fmt.Errorf("%w: response header", ErrBadFrame)
	}
	r.ID = id
	r.Status = Status(body[n])
	r.Payload = body[n+1:]
	return r, nil
}

// ReadFrame reads one frame body from br, reusing buf when it is large
// enough. It returns io.EOF only on a clean boundary (no partial frame).
// It enforces the package-default MaxFrame; connections that negotiated a
// different cap in the handshake use ReadFrameLimit.
func ReadFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	return ReadFrameLimit(br, buf, MaxFrame)
}

// ReadFrameLimit is ReadFrame under a negotiated frame cap.
func ReadFrameLimit(br *bufio.Reader, buf []byte, max uint64) ([]byte, error) {
	size, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read frame length: %w", err)
	}
	if size > max {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds max %d", ErrBadFrame, size, max)
	}
	if uint64(cap(buf)) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("wire: read frame body: %w", err)
	}
	return buf, nil
}

// --- Payload vocabulary ------------------------------------------------------

// AppendBytes appends a uvarint-length-prefixed byte string.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// ReadBytes consumes one AppendBytes field. The result aliases p.
func ReadBytes(p []byte) (b, rest []byte, err error) {
	l, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < l {
		return nil, nil, fmt.Errorf("%w: byte field", ErrBadFrame)
	}
	p = p[n:]
	return p[:l], p[l:], nil
}

// AppendBound appends a scan bound, preserving nil-ness: nil bounds are
// open, and an empty non-nil bound is a real (empty) key.
func AppendBound(dst, b []byte) []byte {
	if b == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return AppendBytes(dst, b)
}

// ReadBound consumes one AppendBound field.
func ReadBound(p []byte) (b, rest []byte, err error) {
	if len(p) < 1 {
		return nil, nil, fmt.Errorf("%w: bound presence", ErrBadFrame)
	}
	if p[0] == 0 {
		return nil, p[1:], nil
	}
	return ReadBytes(p[1:])
}

// AppendPairs appends a count-prefixed run of key-value pairs.
func AppendPairs(dst []byte, pairs []kv.Pair) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pairs)))
	for i := range pairs {
		dst = AppendBytes(dst, pairs[i].Key)
		dst = AppendBytes(dst, pairs[i].Value)
	}
	return dst
}

// ReadPairs decodes an AppendPairs run. The pairs are COPIES — safe to
// retain after the frame buffer is reused.
func ReadPairs(p []byte) ([]kv.Pair, []byte, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, nil, fmt.Errorf("%w: pair count", ErrBadFrame)
	}
	p = p[n:]
	pairs := make([]kv.Pair, 0, minUint64(count, 4096))
	for i := uint64(0); i < count; i++ {
		k, rest, err := ReadBytes(p)
		if err != nil {
			return nil, nil, err
		}
		v, rest, err := ReadBytes(rest)
		if err != nil {
			return nil, nil, err
		}
		p = rest
		pairs = append(pairs, kv.Pair{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
	}
	return pairs, p, nil
}

func minUint64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Iterator positioning commands inside an OpIterNext payload:
//
//	uvarint(maxPairs) | cmd(1) | [seek key]
const (
	IterCmdNext  = 0 // advance from the current position
	IterCmdFirst = 1 // (re)position at the range start
	IterCmdSeek  = 2 // position at the first key >= the given key
)

// --- Error <-> status mapping ------------------------------------------------

// StatusOf maps a handler error onto the wire: the status code plus the
// message the payload carries. Order matters — the typed kv sentinels win
// over the context classes so a wrapped error lands on its most specific
// status.
func StatusOf(err error) (Status, string) {
	switch {
	case err == nil:
		return StatusOK, ""
	case errors.Is(err, kv.ErrSnapshotReleased):
		return StatusSnapshotReleased, err.Error()
	case errors.Is(err, kv.ErrNotSupported):
		return StatusNotSupported, err.Error()
	case errors.Is(err, kv.ErrClosed):
		return StatusClosed, err.Error()
	case errors.Is(err, kv.ErrUnavailable):
		return StatusUnavailable, err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadline, err.Error()
	case errors.Is(err, context.Canceled):
		return StatusCanceled, err.Error()
	default:
		return StatusErr, err.Error()
	}
}

// ErrOf reverses StatusOf on the client: the returned error wraps the
// matching kv sentinel or context error so errors.Is holds across the
// wire exactly as it would in-process.
func ErrOf(status Status, msg string) error {
	if msg == "" {
		msg = "remote error"
	}
	switch status {
	case StatusOK:
		return nil
	case StatusClosed:
		return fmt.Errorf("flodbd: %s: %w", msg, kv.ErrClosed)
	case StatusSnapshotReleased:
		return fmt.Errorf("flodbd: %s: %w", msg, kv.ErrSnapshotReleased)
	case StatusNotSupported:
		return fmt.Errorf("flodbd: %s: %w", msg, kv.ErrNotSupported)
	case StatusUnavailable:
		return fmt.Errorf("flodbd: %s: %w", msg, kv.ErrUnavailable)
	case StatusCanceled:
		return fmt.Errorf("flodbd: %s: %w", msg, context.Canceled)
	case StatusDeadline:
		return fmt.Errorf("flodbd: %s: %w", msg, context.DeadlineExceeded)
	case StatusBadRequest:
		return fmt.Errorf("flodbd: bad request: %s", msg)
	default:
		return fmt.Errorf("flodbd: %s", msg)
	}
}

// --- Stats payload -----------------------------------------------------------

// ServerInfo is the server-side observability snapshot an OpStats response
// carries alongside the store's own kv.Stats. JSON-encoded on the wire:
// stats is a cold diagnostic path whose schema grows with the server, so
// self-describing encoding beats another hand-rolled layout here.
type ServerInfo struct {
	ConnsOpen     uint64            `json:"conns_open"`
	ConnsTotal    uint64            `json:"conns_total"`
	ConnsRejected uint64            `json:"conns_rejected"`
	InFlight      uint64            `json:"in_flight"`
	Requests      uint64            `json:"requests"`
	RequestsByOp  map[string]uint64 `json:"requests_by_op,omitempty"`
	BytesIn       uint64            `json:"bytes_in"`
	BytesOut      uint64            `json:"bytes_out"`
	SlowRequests  uint64            `json:"slow_requests"`
	LeasesExpired uint64            `json:"leases_expired"`
}

// StatsPayload is the OpStats response body (JSON). Ops carries the
// store's per-op latency quantiles when telemetry is on — the same
// extraction `flodb stats -json` prints locally, so the two surfaces
// share one schema.
type StatsPayload struct {
	Store  kv.Stats                 `json:"store"`
	Server ServerInfo               `json:"server"`
	Ops    map[string]obs.Quantiles `json:"ops,omitempty"`
}

// TelemetryPayload is the OpTelemetry response body (JSON): the node's
// merged metric registry frozen at request time, the per-op latency
// quantiles extracted from it, and the newest structured events.
type TelemetryPayload struct {
	Node    string                   `json:"node,omitempty"`
	Ops     map[string]obs.Quantiles `json:"ops,omitempty"`
	Metrics []obs.Metric             `json:"metrics,omitempty"`
	Events  []obs.Event              `json:"events,omitempty"`
}

// --- Handshake ---------------------------------------------------------------

// ProtocolVersion is the wire protocol generation this build speaks.
// Peers exchange it in the first frame of every connection; a mismatch is
// a typed rejection (ErrVersionMismatch), never a frame-decode failure
// deep into the session. v2 added the request trace-id header field and
// OpTelemetry.
const ProtocolVersion = 2

// Feature bits advertised in the handshake. The negotiated set is the
// intersection; a coordinator refuses to treat a node as a replica unless
// FeatureReplication survived the intersection.
const (
	// FeatureReplication: the peer serves OpVPut/OpVApply/OpHealth.
	FeatureReplication uint64 = 1 << iota
)

// Features is the feature set this build implements.
const Features = FeatureReplication

// helloMagic opens a handshake frame, so a peer that speaks no handshake
// at all (or is not flodbd) is detected immediately.
var helloMagic = [4]byte{'f', 'l', 'o', 'D'}

// ErrVersionMismatch reports a peer speaking a different protocol
// generation (or no recognizable handshake at all). errors.Is-able.
var ErrVersionMismatch = errors.New("wire: protocol version mismatch")

// ErrEpochMismatch reports a replica that answered a health probe with a
// different ring epoch: it belongs to a different cluster configuration
// and must not serve this ring's keys. errors.Is-able.
var ErrEpochMismatch = errors.New("wire: ring epoch mismatch")

// Hello is one side's handshake announcement: the first frame each peer
// sends on a fresh connection (client first, then the server's reply).
// Both sides then operate under the NEGOTIATED parameters: the
// intersection of feature sets and the smaller of the two frame caps.
type Hello struct {
	Version  uint8
	Features uint64
	// MaxFrame is the largest frame body this side is willing to read.
	MaxFrame uint64
}

// AppendHello appends h as one complete frame (length prefix included).
// Body: magic(4) | version(1) | uvarint(features) | uvarint(maxFrame).
func AppendHello(dst []byte, h Hello) []byte {
	body := make([]byte, 0, 4+1+2*binary.MaxVarintLen64)
	body = append(body, helloMagic[:]...)
	body = append(body, h.Version)
	body = binary.AppendUvarint(body, h.Features)
	body = binary.AppendUvarint(body, h.MaxFrame)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// ParseHello decodes a handshake frame body. A missing magic or an alien
// version yields ErrVersionMismatch (wrapped with detail) — the typed
// signal that the peer cannot be spoken to, as opposed to a malformed
// frame mid-session.
func ParseHello(body []byte) (Hello, error) {
	var h Hello
	if len(body) < 5 || [4]byte(body[:4]) != helloMagic {
		return h, fmt.Errorf("%w: peer sent no handshake", ErrVersionMismatch)
	}
	h.Version = body[4]
	rest := body[5:]
	f, n := binary.Uvarint(rest)
	if n <= 0 {
		return h, fmt.Errorf("%w: features", ErrBadFrame)
	}
	rest = rest[n:]
	mf, n := binary.Uvarint(rest)
	if n <= 0 {
		return h, fmt.Errorf("%w: max frame", ErrBadFrame)
	}
	h.Features = f
	h.MaxFrame = mf
	if h.Version != ProtocolVersion {
		return h, fmt.Errorf("%w: peer speaks v%d, this build speaks v%d",
			ErrVersionMismatch, h.Version, ProtocolVersion)
	}
	if h.MaxFrame == 0 {
		return h, fmt.Errorf("%w: zero frame cap", ErrBadFrame)
	}
	return h, nil
}

// LocalHello is the announcement this build sends, with maxFrame
// defaulting to the package cap when 0.
func LocalHello(maxFrame uint64) Hello {
	if maxFrame == 0 {
		maxFrame = MaxFrame
	}
	return Hello{Version: ProtocolVersion, Features: Features, MaxFrame: maxFrame}
}

// Negotiate combines the two announcements: shared features, smaller
// frame cap.
func Negotiate(local, remote Hello) (features, maxFrame uint64) {
	features = local.Features & remote.Features
	maxFrame = local.MaxFrame
	if remote.MaxFrame < maxFrame {
		maxFrame = remote.MaxFrame
	}
	return features, maxFrame
}

// --- Versioned records (replication plane) -----------------------------------

// VRecord is one replicated mutation: a coordinator-assigned version, a
// tombstone flag (deletes replicate as versioned tombstones so a stale
// replica cannot resurrect the value), and the pair itself. Replicas
// store the record only if its version exceeds the stored copy's —
// newest-wins — which is what lets quorum writes, read-repair, and hint
// replay all race without coordination.
type VRecord struct {
	Version   uint64
	Tombstone bool
	Key       []byte
	Value     []byte
}

// AppendVRecord appends one record: kind(1) | uvarint(version) | key | value.
func AppendVRecord(dst []byte, r VRecord) []byte {
	kind := byte(0)
	if r.Tombstone {
		kind = 1
	}
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, r.Version)
	dst = AppendBytes(dst, r.Key)
	return AppendBytes(dst, r.Value)
}

// ReadVRecord consumes one AppendVRecord field. Key/Value alias p.
func ReadVRecord(p []byte) (VRecord, []byte, error) {
	var r VRecord
	if len(p) < 1 || p[0] > 1 {
		return r, nil, fmt.Errorf("%w: vrecord kind", ErrBadFrame)
	}
	r.Tombstone = p[0] == 1
	v, n := binary.Uvarint(p[1:])
	if n <= 0 {
		return r, nil, fmt.Errorf("%w: vrecord version", ErrBadFrame)
	}
	r.Version = v
	k, rest, err := ReadBytes(p[1+n:])
	if err != nil {
		return r, nil, err
	}
	val, rest, err := ReadBytes(rest)
	if err != nil {
		return r, nil, err
	}
	r.Key, r.Value = k, val
	return r, rest, nil
}

// AppendVRecords appends a count-prefixed run of records (an OpVApply
// payload).
func AppendVRecords(dst []byte, recs []VRecord) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for i := range recs {
		dst = AppendVRecord(dst, recs[i])
	}
	return dst
}

// ReadVRecords decodes an AppendVRecords run. Keys/values alias p.
func ReadVRecords(p []byte) ([]VRecord, []byte, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, nil, fmt.Errorf("%w: vrecord count", ErrBadFrame)
	}
	p = p[n:]
	recs := make([]VRecord, 0, minUint64(count, 4096))
	for i := uint64(0); i < count; i++ {
		r, rest, err := ReadVRecord(p)
		if err != nil {
			return nil, nil, err
		}
		p = rest
		recs = append(recs, r)
	}
	return recs, p, nil
}

// The value a replica STORES for a replicated key carries the version and
// tombstone inline — uvarint(version) | kind(1) | payload — so a later
// conditional write (or a reading coordinator) can compare versions with
// nothing but a Get.

// AppendVValue encodes a stored replica value.
func AppendVValue(dst []byte, version uint64, tombstone bool, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, version)
	kind := byte(0)
	if tombstone {
		kind = 1
	}
	dst = append(dst, kind)
	return append(dst, payload...)
}

// ParseVValue decodes a stored replica value. payload aliases v.
func ParseVValue(v []byte) (version uint64, tombstone bool, payload []byte, err error) {
	ver, n := binary.Uvarint(v)
	if n <= 0 || len(v) < n+1 || v[n] > 1 {
		return 0, false, nil, fmt.Errorf("%w: stored replica value", ErrBadFrame)
	}
	return ver, v[n] == 1, v[n+1:], nil
}

// --- Health payload ----------------------------------------------------------

// HealthInfo is the OpHealth response body (JSON, like stats: a cold
// diagnostic path). Epoch is the ring-configuration hash the node was
// started under (0 when the node is not ring-aware); the prober treats a
// conflicting non-zero epoch as ErrEpochMismatch.
type HealthInfo struct {
	NodeID string `json:"node_id"`
	Epoch  uint64 `json:"epoch"`
}
