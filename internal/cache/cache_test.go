package cache

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestChargeAccounting: usage tracks inserts, evictions keep the cache
// within capacity, and displaced/evicted entries run their deleter
// exactly once.
func TestChargeAccounting(t *testing.T) {
	var deleted atomic.Int64
	del := func(Key, any) { deleted.Add(1) }

	c := NewWithShards(100, 1) // one stripe: deterministic LRU order
	for i := uint64(0); i < 10; i++ {
		h := c.Insert(Key{ID: i}, i, 10, del)
		h.Release()
	}
	if st := c.Stats(); st.Bytes != 100 || st.Entries != 10 {
		t.Fatalf("full cache: bytes=%d entries=%d, want 100/10", st.Bytes, st.Entries)
	}

	// One more 10-charge insert displaces exactly the coldest entry (ID 0).
	c.Insert(Key{ID: 10}, nil, 10, del).Release()
	if st := c.Stats(); st.Bytes != 100 || st.Entries != 10 || st.Evictions != 1 {
		t.Fatalf("after insert: bytes=%d entries=%d evictions=%d, want 100/10/1", st.Bytes, st.Entries, st.Evictions)
	}
	if h := c.Get(Key{ID: 0}); h != nil {
		t.Fatal("coldest entry survived eviction")
	}
	if deleted.Load() != 1 {
		t.Fatalf("deleter ran %d times, want 1", deleted.Load())
	}

	// A Get promotes ID 1; the next eviction must take ID 2 instead.
	c.Get(Key{ID: 1}).Release()
	var displaced atomic.Int64
	c.Insert(Key{ID: 11}, nil, 10, func(Key, any) { displaced.Add(1) }).Release()
	if h := c.Get(Key{ID: 1}); h == nil {
		t.Fatal("recently-used entry evicted")
	} else {
		h.Release()
	}
	if h := c.Get(Key{ID: 2}); h != nil {
		t.Fatal("LRU order ignored: ID 2 should have been the eviction victim")
	}

	// Replacing a key keeps usage exact and deletes the old value once.
	c.Insert(Key{ID: 11}, nil, 30, del).Release()
	if displaced.Load() != 1 {
		t.Fatalf("displaced entry's deleter ran %d times, want 1", displaced.Load())
	}
	if st := c.Stats(); st.Bytes > 100 {
		t.Fatalf("over capacity after replacement: %d", st.Bytes)
	}

	c.Close()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("Close left entries=%d bytes=%d", st.Entries, st.Bytes)
	}
}

// TestPinBlocksEviction: an entry with an unreleased handle must survive
// any amount of insert pressure, and its deleter must not run until the
// last pin drops — the property that keeps sstable file descriptors
// open under live iterators.
func TestPinBlocksEviction(t *testing.T) {
	var deleted atomic.Int64
	del := func(Key, any) { deleted.Add(1) }

	c := NewWithShards(10, 1)
	pinned := c.Insert(Key{ID: 1}, "keep", 10, del) // fills the cache, stays pinned

	// Pressure: each insert is itself briefly pinned, then released.
	for i := uint64(2); i < 50; i++ {
		c.Insert(Key{ID: i}, nil, 10, nil).Release()
	}
	if h := c.Get(Key{ID: 1}); h == nil {
		t.Fatal("pinned entry was evicted")
	} else {
		if h.Value().(string) != "keep" {
			t.Fatal("pinned entry's value changed")
		}
		h.Release()
	}
	if deleted.Load() != 0 {
		t.Fatal("pinned entry's deleter ran while pinned")
	}

	// Even ERASED entries outlive their pins: deletion waits for Release.
	c.Erase(Key{ID: 1})
	if deleted.Load() != 0 {
		t.Fatal("erased-but-pinned entry deleted early")
	}
	if h := c.Get(Key{ID: 1}); h != nil {
		t.Fatal("erased entry still visible")
	}
	pinned.Release()
	if deleted.Load() != 1 {
		t.Fatalf("deleter ran %d times after last release, want 1", deleted.Load())
	}
}

// TestPinnedOverCapacity documents the transient-overshoot contract:
// when every entry is pinned the shard exceeds its budget rather than
// deleting in-use values, and returns to budget once pins drop.
func TestPinnedOverCapacity(t *testing.T) {
	c := NewWithShards(10, 1)
	var hs []*Handle
	for i := uint64(0); i < 5; i++ {
		hs = append(hs, c.Insert(Key{ID: i}, nil, 10, nil))
	}
	if st := c.Stats(); st.Bytes != 50 || st.Entries != 5 {
		t.Fatalf("pinned shard: bytes=%d entries=%d, want 50/5", st.Bytes, st.Entries)
	}
	for _, h := range hs {
		h.Release()
	}
	// The next insert rebalances the shard back under capacity.
	c.Insert(Key{ID: 99}, nil, 10, nil).Release()
	if st := c.Stats(); st.Bytes > 10 {
		t.Fatalf("shard did not return to budget: %d bytes", st.Bytes)
	}
}

// TestConcurrentGetInsert hammers one small cache from many goroutines;
// run under -race this is the striping/pinning torture test. Every
// value is checked against its key so a torn entry or a premature
// delete shows up as a mismatch.
func TestConcurrentGetInsert(t *testing.T) {
	c := New(256) // default stripes, tiny per-shard budget: constant eviction
	const (
		workers = 8
		laps    = 2000
		keys    = 64
	)
	var deletes atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed*0x9e3779b97f4a7c15 + 1
			for i := 0; i < laps; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				k := Key{ID: x % keys, Offset: (x >> 8) % 4}
				if h := c.Get(k); h != nil {
					if h.Value().(Key) != k {
						t.Errorf("entry %v holds value %v", k, h.Value())
					}
					h.Release()
				} else {
					h := c.Insert(k, k, int64(16+k.ID%16), func(_ Key, v any) {
						deletes.Add(1)
					})
					if h.Value().(Key) != k {
						t.Errorf("fresh insert %v reads back %v", k, h.Value())
					}
					h.Release()
				}
			}
		}(uint64(w))
	}
	wg.Wait()

	st := c.Stats()
	if st.Hits+st.Misses != workers*laps {
		t.Fatalf("hits %d + misses %d != %d ops", st.Hits, st.Misses, workers*laps)
	}
	c.Close()
	if got := c.Len(); got != 0 {
		t.Fatalf("%d entries after Close", got)
	}
}
