// Package cache implements the striped LRU cache behind FloDB's read
// path: the block cache (parsed sstable blocks keyed by file number and
// block offset) and the table-handle cache (open sstable readers keyed
// by file number, bounding the process's fd budget).
//
// The design is the classic LevelDB/pebble sharded LRU, adapted to Go:
//
//   - Striped: the key hash picks one of N independent shards, each with
//     its own mutex, hash map and LRU list, so concurrent readers on
//     different blocks never serialize on one lock. The capacity is
//     split evenly across shards.
//   - Charge-based accounting: every entry carries an explicit charge
//     (bytes for blocks, 1 for table handles); a shard evicts from the
//     cold end whenever its charged total exceeds its share of the
//     capacity.
//   - Pinned handles: Get and Insert return a refcounted *Handle. While
//     a handle is unreleased the entry is skipped by eviction — an open
//     sstable reader cannot have its file descriptor closed under an
//     iterator that is mid-read. A cache whose live entries are all
//     pinned can therefore transiently exceed its capacity; it returns
//     to budget as handles are released.
//   - Deleters: an entry's deleter (close the file, &c.) runs exactly
//     once, after the entry has left the cache AND the last handle is
//     released — never under a shard lock.
//
// Hit, miss and eviction counters are maintained per cache and surfaced
// through Stats; kv.Stats forwards them as BlockCache*/TableCache*.
package cache

import "sync"

// Key identifies an entry: an object ID (file number) plus an offset
// within it (block offset; 0 for whole-object entries like table
// handles). The two-part form lets one cache serve (file, block) keyed
// blocks without string allocation on the hot path.
type Key struct {
	ID     uint64
	Offset uint64
}

// Deleter releases an evicted or erased value (e.g. closes an sstable
// reader). It runs exactly once per entry, outside all cache locks,
// after the last pinning handle is released.
type Deleter func(key Key, value any)

// entry is one cached value. refs counts the cache's own reference
// (1 while resident) plus one per unreleased Handle; all fields are
// guarded by the owning shard's mutex except value/charge/deleter,
// which are immutable after insert.
type entry struct {
	key     Key
	value   any
	charge  int64
	deleter Deleter

	refs    int32
	inCache bool

	// LRU links; valid while inCache. The list is most-recent first.
	prev, next *entry
}

// shard is one stripe: a map for lookup plus an intrusive LRU list for
// eviction order. head.next is the hottest entry, head.prev the
// coldest.
type shard struct {
	mu       sync.Mutex
	capacity int64
	usage    int64
	m        map[Key]*entry
	head     entry // sentinel

	hits, misses, evictions uint64
}

// Cache is a striped LRU cache. Create with New; safe for concurrent
// use.
type Cache struct {
	shards []shard
	mask   uint64
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Bytes is the charged total currently resident (including pinned
	// entries); Entries the resident entry count.
	Bytes   int64
	Entries int
}

// DefaultShards is the stripe count New uses.
const DefaultShards = 16

// New returns a cache bounded by capacity (in charge units), striped
// over DefaultShards shards. A non-positive capacity gives a cache that
// holds entries only while they are pinned — still correct, never
// caching.
func New(capacity int64) *Cache { return NewWithShards(capacity, DefaultShards) }

// NewWithShards returns a cache with an explicit stripe count (rounded
// down to a power of two, min 1). The capacity splits evenly across
// stripes, so for small capacities in coarse units — a table cache
// bounded at a handful of handles — the caller should keep shards <=
// capacity or the per-shard budget rounds to zero.
func NewWithShards(capacity int64, shards int) *Cache {
	n := 1
	for n*2 <= shards {
		n *= 2
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1)}
	per := capacity / int64(n)
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = per
		s.m = make(map[Key]*entry)
		s.head.next = &s.head
		s.head.prev = &s.head
	}
	return c
}

// shardFor hashes the key to a stripe (splitmix64 over both words, so
// sequential file numbers and block offsets spread).
func (c *Cache) shardFor(k Key) *shard {
	h := k.ID*0x9e3779b97f4a7c15 + k.Offset
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 31
	return &c.shards[h&c.mask]
}

// Handle pins one cache entry. Value is valid and the entry safe from
// eviction-triggered deletion until Release.
type Handle struct {
	s *shard
	e *entry
}

// Value returns the pinned entry's value.
func (h *Handle) Value() any { return h.e.value }

// Release unpins the entry. It must be called exactly once; the handle
// must not be used afterwards.
func (h *Handle) Release() {
	s, e := h.s, h.e
	h.s, h.e = nil, nil
	s.mu.Lock()
	e.refs--
	dead := e.refs == 0
	s.mu.Unlock()
	if dead {
		e.delete()
	}
}

// delete runs the deleter; the caller must have established that the
// entry's refcount reached zero (it is detached, so no lock is needed).
func (e *entry) delete() {
	if e.deleter != nil {
		e.deleter(e.key, e.value)
	}
}

// Get returns a pinned handle for key, or nil on miss.
func (c *Cache) Get(key Key) *Handle {
	s := c.shardFor(key)
	s.mu.Lock()
	e := s.m[key]
	if e == nil {
		s.misses++
		s.mu.Unlock()
		return nil
	}
	s.hits++
	e.refs++
	// Move to the hot end.
	s.listRemove(e)
	s.listPushFront(e)
	s.mu.Unlock()
	return &Handle{s: s, e: e}
}

// Insert adds value under key with the given charge, returning a pinned
// handle to it. An existing entry under the same key is displaced (its
// deleter runs once its own pins drain). Insert then evicts cold
// unpinned entries until the shard is back within capacity; entries
// pinned by outstanding handles are skipped, so a fully-pinned shard
// may transiently exceed its budget.
func (c *Cache) Insert(key Key, value any, charge int64, deleter Deleter) *Handle {
	s := c.shardFor(key)
	e := &entry{key: key, value: value, charge: charge, deleter: deleter, refs: 2, inCache: true}

	s.mu.Lock()
	var orphans []*entry
	if old := s.m[key]; old != nil {
		s.detach(old, &orphans)
	}
	s.m[key] = e
	s.listPushFront(e)
	s.usage += charge
	s.evictLocked(&orphans)
	s.mu.Unlock()

	for _, o := range orphans {
		o.delete()
	}
	return &Handle{s: s, e: e}
}

// Erase removes key from the cache if present. The deleter runs after
// outstanding pins drain.
func (c *Cache) Erase(key Key) {
	s := c.shardFor(key)
	s.mu.Lock()
	var orphans []*entry
	if e := s.m[key]; e != nil {
		s.detach(e, &orphans)
	}
	s.mu.Unlock()
	for _, o := range orphans {
		o.delete()
	}
}

// Close empties the cache. Entries still pinned by outstanding handles
// are detached and die when released; unpinned entries die now. The
// cache remains usable (a closed-then-used cache just caches again), so
// Close doubles as Purge.
func (c *Cache) Close() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var orphans []*entry
		for _, e := range s.m {
			s.detach(e, &orphans)
		}
		s.mu.Unlock()
		for _, o := range orphans {
			o.delete()
		}
	}
}

// Stats sums the shard counters.
func (c *Cache) Stats() Stats {
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Bytes += s.usage
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// detach removes e from the map, list and accounting (shard lock held),
// dropping the cache's reference. If that was the last reference the
// entry is appended to orphans for deletion outside the lock.
func (s *shard) detach(e *entry, orphans *[]*entry) {
	if !e.inCache {
		return
	}
	e.inCache = false
	delete(s.m, e.key)
	s.listRemove(e)
	s.usage -= e.charge
	e.refs--
	if e.refs == 0 {
		*orphans = append(*orphans, e)
	}
}

// evictLocked walks from the cold end detaching unpinned entries until
// usage fits capacity. Pinned entries (refs > 1: cache ref plus at
// least one handle) are skipped — in-use blocks and table handles are
// never deleted under their readers.
func (s *shard) evictLocked(orphans *[]*entry) {
	for e := s.head.prev; s.usage > s.capacity && e != &s.head; {
		cold := e
		e = e.prev
		if cold.refs > 1 {
			continue
		}
		s.detach(cold, orphans)
		s.evictions++
	}
}

func (s *shard) listPushFront(e *entry) {
	e.next = s.head.next
	e.prev = &s.head
	e.next.prev = e
	s.head.next = e
}

func (s *shard) listRemove(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}
