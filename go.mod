module flodb

go 1.24
