package flodb_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flodb"
	"flodb/internal/keys"
)

// TestSnapshotSeesExactlyThePast takes a snapshot of a known state, then
// overwrites every key, and asserts the snapshot keeps serving the old
// state — through Get, Scan, and an iterator — while the live view serves
// the new one.
func TestSnapshotSeesExactlyThePast(t *testing.T) {
	db := openPublic(t, flodb.WithMemory(1<<20))
	const n = 500
	for i := 0; i < n; i++ {
		if err := db.Put(bg, keys.EncodeUint64(uint64(i)), []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A deleted key must stay deleted in the snapshot even if re-created
	// afterwards.
	if err := db.Delete(bg, keys.EncodeUint64(7)); err != nil {
		t.Fatal(err)
	}

	snap, err := db.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	for i := 0; i < n; i++ {
		if err := db.Put(bg, keys.EncodeUint64(uint64(i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}

	if v, ok, err := snap.Get(bg, keys.EncodeUint64(42)); err != nil || !ok || string(v) != "old-42" {
		t.Fatalf("snapshot Get = %q %v %v, want old-42", v, ok, err)
	}
	if _, ok, err := snap.Get(bg, keys.EncodeUint64(7)); err != nil || ok {
		t.Fatalf("deleted key visible in snapshot (ok=%v err=%v)", ok, err)
	}
	if v, ok, _ := db.Get(bg, keys.EncodeUint64(42)); !ok || string(v) != "new" {
		t.Fatalf("live Get = %q %v, want new", v, ok)
	}

	pairs, err := snap.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != n-1 {
		t.Fatalf("snapshot scan: %d pairs, want %d", len(pairs), n-1)
	}
	for _, p := range pairs {
		want := fmt.Sprintf("old-%d", keys.DecodeUint64(p.Key))
		if string(p.Value) != want {
			t.Fatalf("snapshot scan leaked post-snapshot value %q for key %d", p.Value, keys.DecodeUint64(p.Key))
		}
	}

	it, err := snap.NewIterator(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n-1 {
		t.Fatalf("snapshot iterator: %d pairs, want %d", count, n-1)
	}
}

// TestSnapshotIsolationModel is the snapshot-isolation model test of the
// read-view contract, run under -race: writers continuously bump per-key
// version counters while a reader thread takes snapshots and
// cross-validates them against a sequence-bounded oracle. Three
// properties are checked per snapshot:
//
//  1. repeatable read — two full passes over the snapshot see identical
//     data, however much the writers race;
//  2. per-key monotonicity across snapshots — a later snapshot never
//     shows an older version than an earlier one (the store's sequence
//     order is the oracle: versions only grow);
//  3. no time travel — a snapshot never shows a version the oracle had
//     not yet recorded as written when the snapshot returned.
func TestSnapshotIsolationModel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db := openPublic(t, flodb.WithMemory(1<<20))
	const (
		nKeys     = 64
		writers   = 4
		snapshots = 8
	)

	// Oracle: upperBound[k] is the newest version written to key k,
	// recorded AFTER Put returns — so a snapshot taken later must not
	// show anything newer, and versions a snapshot shows must be <= the
	// bound read after the snapshot was created.
	var upperBound [nKeys]atomic.Uint64
	var lowerBound [nKeys]atomic.Uint64 // recorded BEFORE Put is issued

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var version atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (i*writers + w) % nKeys
				ver := version.Add(1)
				lowerBound[k].Store(ver)
				if err := db.Put(bg, keys.EncodeUint64(uint64(k)), keys.EncodeUint64(ver)); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
				// Publish: the version is definitely visible from here on.
				for {
					cur := upperBound[k].Load()
					if cur >= ver || upperBound[k].CompareAndSwap(cur, ver) {
						break
					}
				}
			}
		}(w)
	}

	prev := make(map[uint64]uint64) // per-key floor from earlier snapshots
	for s := 0; s < snapshots; s++ {
		snap, err := db.Snapshot(bg)
		if err != nil {
			t.Fatal(err)
		}
		// Ceiling read AFTER the snapshot exists: anything the snapshot
		// shows must already have been issued (lowerBound is set before
		// the Put) — read it post-creation for a sound comparison.
		var ceil [nKeys]uint64
		for k := range ceil {
			ceil[k] = version.Load()
		}

		pass1, err := snap.Scan(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		pass2, err := snap.Scan(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(pass1) != len(pass2) {
			t.Fatalf("snapshot %d not repeatable: %d vs %d pairs", s, len(pass1), len(pass2))
		}
		for i := range pass1 {
			if !keys.Equal(pass1[i].Key, pass2[i].Key) || !keys.Equal(pass1[i].Value, pass2[i].Value) {
				t.Fatalf("snapshot %d not repeatable at %d: %x=%x vs %x=%x",
					s, i, pass1[i].Key, pass1[i].Value, pass2[i].Key, pass2[i].Value)
			}
		}
		// And point reads agree with the scan.
		for _, p := range pass1 {
			v, ok, err := snap.Get(bg, p.Key)
			if err != nil || !ok || !keys.Equal(v, p.Value) {
				t.Fatalf("snapshot %d: Get(%x) = %x %v %v, scan said %x", s, p.Key, v, ok, err, p.Value)
			}
			k := keys.DecodeUint64(p.Key)
			ver := keys.DecodeUint64(p.Value)
			if ver > ceil[k] {
				t.Fatalf("snapshot %d: key %d shows version %d from the future (ceil %d)", s, k, ver, ceil[k])
			}
			if floor := prev[k]; ver < floor {
				t.Fatalf("snapshot %d: key %d went backwards: %d < earlier snapshot's %d", s, k, ver, floor)
			}
			prev[k] = ver
		}
		snap.Close()
	}
	close(stop)
	wg.Wait()

	// Final quiesced snapshot must match the oracle's published floor.
	snap, err := db.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	for k := 0; k < nKeys; k++ {
		want := upperBound[k].Load()
		if want == 0 {
			continue
		}
		v, ok, err := snap.Get(bg, keys.EncodeUint64(uint64(k)))
		if err != nil || !ok {
			t.Fatalf("key %d missing after quiesce (%v %v)", k, ok, err)
		}
		got := keys.DecodeUint64(v)
		// The final value is the last version any writer issued for k,
		// which is >= the published bound (a racing writer may have
		// issued-but-not-yet-published when the bound was read).
		if got < want {
			t.Fatalf("key %d: final snapshot has version %d < published %d", k, got, want)
		}
	}
}

// TestSnapshotReleased asserts the typed error taxonomy on released
// snapshots.
func TestSnapshotReleased(t *testing.T) {
	db := openPublic(t)
	db.Put(bg, []byte("k"), []byte("v"))
	snap, err := db.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, _, err := snap.Get(bg, []byte("k")); !errors.Is(err, flodb.ErrSnapshotReleased) {
		t.Fatalf("Get on released snapshot: %v", err)
	}
	if _, err := snap.Scan(bg, nil, nil); !errors.Is(err, flodb.ErrSnapshotReleased) {
		t.Fatalf("Scan on released snapshot: %v", err)
	}
	if _, err := snap.NewIterator(bg, nil, nil); !errors.Is(err, flodb.ErrSnapshotReleased) {
		t.Fatalf("NewIterator on released snapshot: %v", err)
	}
}

// TestSnapshotIteratorSurvivesClose: iterators hold their own pin.
func TestSnapshotIteratorSurvivesClose(t *testing.T) {
	db := openPublic(t)
	for i := 0; i < 100; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), []byte("v"))
	}
	snap, err := db.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	it, err := snap.NewIterator(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.First() {
		t.Fatal("empty iterator")
	}
	snap.Close() // must not invalidate it
	n := 1
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("iterator after snapshot Close saw %d pairs", n)
	}
}

// TestCheckpointCrashConsistency checkpoints mid-write-storm and reopens
// the copy: it must open as a valid store containing exactly a
// prefix-consistent state — keys seq:0..seq:m present for some m, nothing
// beyond, no holes.
func TestCheckpointCrashConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	// Small memory component so the storm forces real persist cycles
	// (WAL turnover) while checkpoints race them.
	db, err := flodb.Open(dir, flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var written atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // single sequential writer: WAL order == key order
		defer wg.Done()
		val := make([]byte, 128)
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Put(bg, []byte(fmt.Sprintf("seq:%08d", i)), val); err != nil {
				t.Errorf("storm writer: %v", err)
				return
			}
			written.Store(i + 1)
		}
	}()

	// Let the storm build up state, then checkpoint mid-flight, twice.
	for round := 0; round < 2; round++ {
		for written.Load() < uint64(2000*(round+1)) {
			time.Sleep(time.Millisecond)
		}
		ckdir := fmt.Sprintf("%s-ck%d", dir, round)
		before := written.Load()
		if err := db.Checkpoint(bg, ckdir); err != nil {
			t.Fatal(err)
		}
		after := written.Load()

		ck, err := flodb.Open(ckdir)
		if err != nil {
			t.Fatalf("checkpoint does not reopen: %v", err)
		}
		pairs, err := ck.Scan(bg, []byte("seq:"), []byte("seq:\xff"))
		if err != nil {
			t.Fatal(err)
		}
		if err := ck.Close(); err != nil {
			t.Fatal(err)
		}

		m := uint64(len(pairs))
		// Prefix-consistency: exactly seq:0..seq:m-1, in order, no holes.
		for i, p := range pairs {
			want := fmt.Sprintf("seq:%08d", i)
			if string(p.Key) != want {
				t.Fatalf("round %d: pair %d is %q, want %q (hole or reorder)", round, i, p.Key, want)
			}
		}
		// And the prefix length brackets the writer's progress: at least
		// everything synced before the call started minus the unsynced
		// window is impossible to bound tightly, but m can never exceed
		// what was written when the checkpoint finished.
		if m > after+1 {
			t.Fatalf("round %d: checkpoint contains %d keys, writer had only written %d", round, m, after)
		}
		t.Logf("round %d: checkpoint holds %d keys (writer: %d before, %d after)", round, m, before, after)
	}
	close(stop)
	wg.Wait()
}

// TestCheckpointRejectsNonEmptyDir guards the destination contract.
func TestCheckpointRejectsNonEmptyDir(t *testing.T) {
	db := openPublic(t)
	db.Put(bg, []byte("k"), []byte("v"))
	dst := t.TempDir() // exists AND will be non-empty
	if err := db.Checkpoint(bg, dst); err != nil {
		t.Fatalf("empty existing dir should be accepted: %v", err)
	}
	if err := db.Checkpoint(bg, dst); err == nil {
		t.Fatal("non-empty destination accepted")
	}
}

// TestContextCanceledScan: a deadline/cancel mid-scan surfaces promptly
// via errors.Is(err, context.Canceled) on the public API.
func TestContextCanceledScan(t *testing.T) {
	db := openPublic(t)
	for i := 0; i < 2000; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), []byte("v"))
	}
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	it, err := db.NewIterator(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
		if n == 300 { // more than one refill chunk in, then cut it off
			cancel()
		}
	}
	if err := it.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("iterator after cancel: err=%v after %d pairs", err, n)
	}
	if n >= 2000 {
		t.Fatal("iterator ran to completion despite cancellation")
	}
	// Already-expired contexts refuse new operations outright.
	if _, err := db.Scan(ctx, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Scan with canceled ctx: %v", err)
	}
	if err := db.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Put with canceled ctx: %v", err)
	}
	if _, err := db.Snapshot(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Snapshot with canceled ctx: %v", err)
	}
}
