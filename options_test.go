package flodb_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"flodb"
	"flodb/internal/obs"
)

// TestOpenRejectsBadOptions: out-of-range option values fail Open with an
// error naming the option — never a silent clamp to the default.
func TestOpenRejectsBadOptions(t *testing.T) {
	cases := []struct {
		name string
		opt  flodb.Option
		want string
	}{
		{"zero memory", flodb.WithMemory(0), "WithMemory"},
		{"negative memory", flodb.WithMemory(-4096), "WithMemory"},
		{"fraction zero", flodb.WithMembufferFraction(0), "WithMembufferFraction"},
		{"fraction one", flodb.WithMembufferFraction(1), "WithMembufferFraction"},
		{"fraction above one", flodb.WithMembufferFraction(1.5), "WithMembufferFraction"},
		{"partition bits 17", flodb.WithPartitionBits(17), "WithPartitionBits"},
		{"zero drain threads", flodb.WithDrainThreads(0), "WithDrainThreads"},
		{"negative drain threads", flodb.WithDrainThreads(-1), "WithDrainThreads"},
		{"zero restart threshold", flodb.WithRestartThreshold(0), "WithRestartThreshold"},
		{"invalid durability", flodb.WithDurability(flodb.Durability(99)), "WithDurability"},
		{"adaptive range inverted", flodb.WithAdaptiveMemoryRange(0.5, 0.2), "WithAdaptiveMemoryRange"},
		{"adaptive range outside (0,1)", flodb.WithAdaptiveMemoryRange(0, 0.5), "WithAdaptiveMemoryRange"},
		{"adaptive window zero", flodb.WithAdaptiveMemoryWindow(0), "WithAdaptiveMemoryWindow"},
		{"adaptive window negative", flodb.WithAdaptiveMemoryWindow(-1), "WithAdaptiveMemoryWindow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, err := flodb.Open(t.TempDir(), tc.opt)
			if err == nil {
				db.Close()
				t.Fatal("bad option accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

// TestWithAdaptiveMemory: the adaptive store opens at the configured
// starting split and reports it live through Stats; cross-field
// contradictions (a pinned start outside the adaptive range, a range
// with a disabled membuffer... ) surface as Open errors.
func TestWithAdaptiveMemory(t *testing.T) {
	db, err := flodb.Open(t.TempDir(), flodb.WithAdaptiveMemory())
	if err != nil {
		t.Fatal(err)
	}
	if f := db.Stats().MembufferFraction; f != 0.25 {
		t.Fatalf("starting fraction %v, want 0.25", f)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if db, err := flodb.Open(t.TempDir(),
		flodb.WithAdaptiveMemoryRange(0.1, 0.2), flodb.WithMembufferFraction(0.5)); err == nil {
		db.Close()
		t.Fatal("starting fraction outside the adaptive range accepted")
	}
	// A range that excludes the DEFAULT starting fraction is fine when
	// the caller never chose one: the start clamps into the range.
	db, err = flodb.Open(t.TempDir(), flodb.WithAdaptiveMemoryRange(0.3, 0.6))
	if err != nil {
		t.Fatalf("range excluding the default start rejected: %v", err)
	}
	if f := db.Stats().MembufferFraction; f != 0.3 {
		t.Fatalf("starting fraction %v, want the range floor 0.3", f)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRejectsSyncDurabilityWithoutWAL: the two options contradict.
func TestOpenRejectsSyncDurabilityWithoutWAL(t *testing.T) {
	db, err := flodb.Open(t.TempDir(), flodb.WithoutWAL(), flodb.WithSync())
	if !errors.Is(err, flodb.ErrNotSupported) {
		if err == nil {
			db.Close()
		}
		t.Fatalf("WithoutWAL + WithSync: err = %v, want ErrNotSupported", err)
	}
}

// TestPerOpDurabilityAndSyncBarrier drives the public durability surface:
// a dual-purpose option at Open and per-op, plus the Sync barrier closing
// the acked-vs-durable window reported by Stats.
func TestPerOpDurabilityAndSyncBarrier(t *testing.T) {
	db, err := flodb.Open(t.TempDir(), flodb.WithDurability(flodb.DurabilityBuffered))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Put(bg, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(bg, []byte("b"), []byte("2"), flodb.WithSync()); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(bg, []byte("c"), []byte("3"), flodb.WithDurability(flodb.DurabilityNone)); err != nil {
		t.Fatal(err)
	}
	b := flodb.NewWriteBatch()
	b.Put([]byte("d"), []byte("4"))
	b.Put([]byte("e"), []byte("5"))
	if err := db.Apply(bg, b, flodb.WithSync()); err != nil {
		t.Fatal(err)
	}

	s := db.Stats()
	if s.AckedSeq == 0 || s.DurableSeq == 0 || s.DurableSeq > s.AckedSeq {
		t.Fatalf("boundary incoherent: %+v", s)
	}
	if s.WALSyncs == 0 {
		t.Fatal("sync-class writes issued no fsync")
	}

	if err := db.Put(bg, []byte("f"), []byte("6")); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(bg); err != nil {
		t.Fatal(err)
	}
	s = db.Stats()
	if s.DurableSeq != s.AckedSeq {
		t.Fatalf("Sync barrier left a window: durable %d < acked %d", s.DurableSeq, s.AckedSeq)
	}
	if s.SyncBarriers != 1 {
		t.Fatalf("SyncBarriers = %d, want 1", s.SyncBarriers)
	}

	// All five keys readable regardless of class.
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3", "d": "4", "e": "5", "f": "6"} {
		v, ok, err := db.Get(bg, []byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("get %q = %q %v %v", k, v, ok, err)
		}
	}
}

func TestWithShardsRejectsBadCounts(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := flodb.Open(t.TempDir(), flodb.WithShards(n)); err == nil {
			t.Fatalf("WithShards(%d) accepted", n)
		}
	}
	// WithShards(1) is the explicit spelling of the default.
	db, err := flodb.Open(t.TempDir(), flodb.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Shards() != 1 {
		t.Fatalf("Shards() = %d", db.Shards())
	}
}

// TestWithTelemetryOff checks the gate: histograms and events vanish,
// counters stay (kv.Stats is load-bearing), and re-enabling is just the
// default.
func TestWithTelemetryOff(t *testing.T) {
	ctx := context.Background()
	db, err := flodb.Open(t.TempDir(), flodb.WithTelemetry(false))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 20; i++ {
		if err := db.Put(ctx, []byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if ops := obs.OpQuantiles(db.TelemetrySnapshot()); ops != nil {
		t.Fatalf("telemetry off still records op quantiles: %v", ops)
	}
	if evs := db.TelemetryEvents(0); len(evs) != 0 {
		t.Fatalf("telemetry off still emits events: %v", evs)
	}
	if st := db.Stats(); st.Puts != 20 {
		t.Fatalf("counters must survive WithTelemetry(false): Puts = %d", st.Puts)
	}

	on, err := flodb.Open(t.TempDir(), flodb.WithTelemetry(true))
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	if err := on.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if ops := obs.OpQuantiles(on.TelemetrySnapshot()); ops["put"].Count != 1 {
		t.Fatalf("telemetry on records nothing: %v", ops)
	}
}
