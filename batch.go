package flodb

import (
	"context"

	"flodb/internal/kv"
)

// WriteBatch is an ordered group of Put and Delete operations committed
// atomically by DB.Apply. Operations apply in insertion order (a later
// operation on the same key wins). Put and Delete copy their arguments,
// so the caller may reuse buffers immediately. A WriteBatch is not safe
// for concurrent mutation; Reset recycles one for reuse after Apply.
//
//	b := flodb.NewWriteBatch()
//	b.Put([]byte("user:7:name"), []byte("ada"))
//	b.Put([]byte("user:7:email"), []byte("ada@example.com"))
//	b.Delete([]byte("user:7:pending"))
//	if err := db.Apply(ctx, b); err != nil { ... }
type WriteBatch = kv.Batch

// NewWriteBatch returns an empty batch.
func NewWriteBatch() *WriteBatch { return kv.NewBatch() }

// Apply commits every operation in b atomically. The batch is logged as
// ONE write-ahead-log record — under DurabilitySync that is a single
// group-committed fsync regardless of the batch size — and after a crash
// either every operation in the batch is recovered or none is. Concurrent
// scans and iterators never observe a partially applied batch; racing
// point Gets may. Durability options apply to the whole batch.
//
// An empty or nil batch is a no-op.
func (db *DB) Apply(ctx context.Context, b *WriteBatch, opts ...WriteOption) error {
	return db.inner.Apply(ctx, b, opts...)
}
