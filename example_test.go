package flodb_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"flodb"
)

// Example demonstrates the core public API: open, write, read, scan,
// delete, close.
func Example() {
	dir := filepath.Join(os.TempDir(), "flodb-example")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	db.Put([]byte("c"), []byte("3"))
	db.Delete([]byte("b"))

	if v, found, _ := db.Get([]byte("a")); found {
		fmt.Printf("a=%s\n", v)
	}
	pairs, _ := db.Scan([]byte("a"), []byte("z"))
	for _, p := range pairs {
		fmt.Printf("%s=%s\n", p.Key, p.Value)
	}
	// Output:
	// a=1
	// a=1
	// c=3
}

// ExampleOpen shows tuning the store with functional options — the memory
// budget is the paper's central knob: a larger budget lets the store
// absorb longer write bursts at hash-table speed.
func ExampleOpen() {
	dir := filepath.Join(os.TempDir(), "flodb-example-open")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir,
		flodb.WithMemory(128<<20), // 128 MiB total, split 1:4 buffer:table
		flodb.WithMembufferFraction(0.25),
		flodb.WithDrainThreads(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println(db.Put([]byte("k"), []byte("v")))
	// Output:
	// <nil>
}

// ExampleDB_NewIterator streams a range through a cursor: only a small
// prefetch chunk is ever resident, so the same loop handles ranges far
// larger than memory.
func ExampleDB_NewIterator() {
	dir := filepath.Join(os.TempDir(), "flodb-example-iter")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("user:1"), []byte("ada"))
	db.Put([]byte("user:2"), []byte("grace"))
	db.Put([]byte("user:3"), []byte("edsger"))

	it, err := db.NewIterator([]byte("user:"), []byte("user:\xff"))
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	for ok := it.First(); ok; ok = it.Next() {
		fmt.Printf("%s=%s\n", it.Key(), it.Value())
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// user:1=ada
	// user:2=grace
	// user:3=edsger
}

// ExampleDB_Apply commits several mutations atomically: one WAL record,
// all-or-nothing recovery, never observed partially by scans.
func ExampleDB_Apply() {
	dir := filepath.Join(os.TempDir(), "flodb-example-batch")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	b := flodb.NewWriteBatch()
	b.Put([]byte("acct:alice"), []byte("90"))
	b.Put([]byte("acct:bob"), []byte("110"))
	if err := db.Apply(b); err != nil {
		log.Fatal(err)
	}

	v, _, _ := db.Get([]byte("acct:bob"))
	fmt.Printf("bob=%s after %d-op batch\n", v, b.Len())
	// Output:
	// bob=110 after 2-op batch
}
