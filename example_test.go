package flodb_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"flodb"
	"flodb/internal/obs"
)

// Example demonstrates the core public API: open, write, read, scan,
// delete, close.
func Example() {
	dir := filepath.Join(os.TempDir(), "flodb-example")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put(bg, []byte("a"), []byte("1"))
	db.Put(bg, []byte("b"), []byte("2"))
	db.Put(bg, []byte("c"), []byte("3"))
	db.Delete(bg, []byte("b"))

	if v, found, _ := db.Get(bg, []byte("a")); found {
		fmt.Printf("a=%s\n", v)
	}
	pairs, _ := db.Scan(bg, []byte("a"), []byte("z"))
	for _, p := range pairs {
		fmt.Printf("%s=%s\n", p.Key, p.Value)
	}
	// Output:
	// a=1
	// a=1
	// c=3
}

// ExampleOpen shows tuning the store with functional options — the memory
// budget is the paper's central knob: a larger budget lets the store
// absorb longer write bursts at hash-table speed.
func ExampleOpen() {
	dir := filepath.Join(os.TempDir(), "flodb-example-open")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir,
		flodb.WithMemory(128<<20), // 128 MiB total, split 1:4 buffer:table
		flodb.WithMembufferFraction(0.25),
		flodb.WithDrainThreads(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println(db.Put(bg, []byte("k"), []byte("v")))
	// Output:
	// <nil>
}

// ExampleDB_NewIterator streams a range through a cursor: only a small
// prefetch chunk is ever resident, so the same loop handles ranges far
// larger than memory.
func ExampleDB_NewIterator() {
	dir := filepath.Join(os.TempDir(), "flodb-example-iter")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put(bg, []byte("user:1"), []byte("ada"))
	db.Put(bg, []byte("user:2"), []byte("grace"))
	db.Put(bg, []byte("user:3"), []byte("edsger"))

	it, err := db.NewIterator(bg, []byte("user:"), []byte("user:\xff"))
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	for ok := it.First(); ok; ok = it.Next() {
		fmt.Printf("%s=%s\n", it.Key(), it.Value())
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// user:1=ada
	// user:2=grace
	// user:3=edsger
}

// ExampleDB_Apply commits several mutations atomically: one WAL record,
// all-or-nothing recovery, never observed partially by scans.
func ExampleDB_Apply() {
	dir := filepath.Join(os.TempDir(), "flodb-example-batch")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	b := flodb.NewWriteBatch()
	b.Put([]byte("acct:alice"), []byte("90"))
	b.Put([]byte("acct:bob"), []byte("110"))
	if err := db.Apply(bg, b); err != nil {
		log.Fatal(err)
	}

	v, _, _ := db.Get(bg, []byte("acct:bob"))
	fmt.Printf("bob=%s after %d-op batch\n", v, b.Len())
	// Output:
	// bob=110 after 2-op batch
}

// ExampleDB_Sync shows the batch-load durability pattern: stream writes
// at memory speed under the Buffered default, then raise one durability
// barrier that promotes everything acknowledged so far — one fsync for
// the whole load instead of one per write. A single urgent write can
// instead demand its own group-committed barrier with flodb.WithSync().
func ExampleDB_Sync() {
	dir := filepath.Join(os.TempDir(), "flodb-example-sync")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 1000; i++ {
		// Buffered: logged, acknowledged without waiting for the disk.
		if err := db.Put(bg, []byte(fmt.Sprintf("row:%04d", i)), []byte("loaded")); err != nil {
			log.Fatal(err)
		}
	}
	// The barrier: every write acknowledged above is now crash-durable.
	if err := db.Sync(bg); err != nil {
		log.Fatal(err)
	}
	// An urgent single write can pay for its own barrier instead.
	if err := db.Put(bg, []byte("commit-marker"), []byte("done"), flodb.WithSync()); err != nil {
		log.Fatal(err)
	}

	s := db.Stats()
	fmt.Printf("no acked write left behind: %v\n", s.DurableSeq == s.AckedSeq)
	fmt.Printf("fsyncs stayed O(1), not O(writes): %v\n", s.WALSyncs < 10)
	// Output:
	// no acked write left behind: true
	// fsyncs stayed O(1), not O(writes): true
}

// ExampleDB_Snapshot pins a repeatable-read view: reads through the
// handle keep seeing the state at Snapshot time, however many writes land
// afterwards — the multi-request consistency a session pins itself to.
func ExampleDB_Snapshot() {
	dir := filepath.Join(os.TempDir(), "flodb-example-snapshot")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put(bg, []byte("balance"), []byte("100"))

	snap, err := db.Snapshot(bg)
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()

	db.Put(bg, []byte("balance"), []byte("250")) // later write

	old, _, _ := snap.Get(bg, []byte("balance"))
	live, _, _ := db.Get(bg, []byte("balance"))
	fmt.Printf("snapshot=%s live=%s\n", old, live)
	// Output:
	// snapshot=100 live=250
}

// ExampleDB_Checkpoint takes an online, openable copy of the store —
// hard-linked sstables plus the WAL tail — suitable for backups and for
// seeding replicas. The source stays open and serving throughout.
func ExampleDB_Checkpoint() {
	dir := filepath.Join(os.TempDir(), "flodb-example-checkpoint")
	ckdir := dir + "-backup"
	os.RemoveAll(dir)
	os.RemoveAll(ckdir)
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put(bg, []byte("k"), []byte("v"))
	if err := db.Checkpoint(bg, ckdir); err != nil {
		log.Fatal(err)
	}

	backup, err := flodb.Open(ckdir) // the checkpoint is a real store
	if err != nil {
		log.Fatal(err)
	}
	defer backup.Close()
	v, found, _ := backup.Get(bg, []byte("k"))
	fmt.Printf("backup has k=%s (found=%v)\n", v, found)
	// Output:
	// backup has k=v (found=true)
}

// ExampleDB_NewIterator_deadline bounds a scan with a context deadline: a
// slow consumer (or an oversized range) is cut off promptly, and the
// context error is reported through the iterator's Err.
func ExampleDB_NewIterator_deadline() {
	dir := filepath.Join(os.TempDir(), "flodb-example-deadline")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 10000; i++ {
		db.Put(bg, []byte(fmt.Sprintf("k%08d", i)), []byte("v"))
	}

	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	it, err := db.NewIterator(ctx, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		if n++; n == 100 {
			cancel() // in production: a deadline firing mid-scan
		}
	}
	fmt.Printf("stopped early: %v (read %v pairs before the full 10000)\n",
		errors.Is(it.Err(), context.Canceled), n < 10000)
	// Output:
	// stopped early: true (read true pairs before the full 10000)
}

// ExampleDB_adaptiveMemory opens a store whose Membuffer↔Memtable
// split tracks the workload (§4.4): a windowed sensor watches the
// put/get/scan mix and a controller resizes the split inside the
// configured range — update-heavy phases grow the Membuffer,
// scan-heavy phases shrink it. Stats reports the live split and the
// resize count.
func ExampleDB_adaptiveMemory() {
	dir := filepath.Join(os.TempDir(), "flodb-example-adaptive")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir,
		flodb.WithAdaptiveMemory(),                // sensor + controller on
		flodb.WithAdaptiveMemoryRange(0.10, 0.50), // controller bounds
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 1000; i++ {
		if err := db.Put(bg, []byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			log.Fatal(err)
		}
	}
	s := db.Stats()
	fmt.Println("fraction within bounds:", s.MembufferFraction >= 0.10 && s.MembufferFraction <= 0.50)
	// Output:
	// fraction within bounds: true
}

// ExampleDB_shards opens a range-sharded store: four independent FloDB
// engines — each with its own WAL, memory component and compactor —
// behind one DB. Writes route by key range, scans merge the shards in
// global key order, and the shard count is fixed at creation (recorded
// in the SHARDS manifest, so a reopen must match).
func ExampleDB_shards() {
	dir := filepath.Join(os.TempDir(), "flodb-example-shards")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir, flodb.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for _, k := range []string{"delta", "alpha", "charlie", "bravo"} {
		if err := db.Put(bg, []byte(k), []byte("v")); err != nil {
			log.Fatal(err)
		}
	}
	pairs, err := db.Scan(bg, nil, nil) // one ordered stream across shards
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		fmt.Println(string(p.Key))
	}
	fmt.Println("shards:", db.Shards())
	// Output:
	// alpha
	// bravo
	// charlie
	// delta
	// shards: 4
}

// ExampleDB_adaptiveSharding opens a store whose shard layout is the
// rebalance controller's to change: within [min, max] the controller
// splits a shard that persistently carries more than its fair share of
// traffic (at the median of its recently written keys) and merges
// persistently cold neighbors. Every rewrite bumps the topology epoch;
// ShardTopology is the versioned view a routing cache compares against,
// and Stats counts the splits and merges as they happen.
func ExampleDB_adaptiveSharding() {
	dir := filepath.Join(os.TempDir(), "flodb-example-adaptive-shards")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir, flodb.WithShardPolicy(flodb.Adaptive(2, 8)))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 256; i++ {
		if err := db.Put(bg, []byte(fmt.Sprintf("user%04d", i)), []byte("v")); err != nil {
			log.Fatal(err)
		}
	}

	topo := db.ShardTopology()
	fmt.Println("routing:", topo.Routing)
	fmt.Println("opened at min shards:", topo.Shards)
	fmt.Println("epoch starts at:", topo.Epoch)
	// A reopen adopts whatever layout the controller left behind — the
	// SHARDS manifest, not the policy's minimum, is authoritative.
	st := db.Stats()
	fmt.Println("splits+merges so far:", st.ShardSplits+st.ShardMerges)
	// Output:
	// routing: range
	// opened at min shards: 2
	// epoch starts at: 1
	// splits+merges so far: 0
}

// ExampleDB_blockCache sizes the two read-path caches: the block cache
// (parsed sstable blocks, byte-budgeted, total across shards) and the
// table cache (open sstable readers — one fd plus a parsed index and
// bloom filter each, capacity per shard). Warm reads skip the disk
// read and the block decode; Stats reports the funnel's hit rates.
func ExampleDB_blockCache() {
	dir := filepath.Join(os.TempDir(), "flodb-example-blockcache")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir,
		flodb.WithBlockCacheSize(8<<20),  // 8 MiB of parsed blocks
		flodb.WithTableCacheCapacity(64), // at most 64 open readers
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 1000; i++ {
		if err := db.Put(bg, []byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			log.Fatal(err)
		}
	}
	if _, _, err := db.Get(bg, []byte("k0500")); err != nil {
		log.Fatal(err)
	}
	s := db.Stats()
	// A fresh store served everything from the memory component, so the
	// caches saw no disk traffic yet — the counters exist either way.
	fmt.Println("block cache ok:", s.BlockCacheHits+s.BlockCacheMisses >= 0)
	fmt.Println("table cache ok:", s.TableCacheHits+s.TableCacheMisses >= 0)
	// Output:
	// block cache ok: true
	// table cache ok: true
}

// ExampleDB_metrics shows the observability surface: every operation is
// recorded in per-op latency histograms and the counter registry, and
// TelemetrySnapshot freezes the whole thing — the same snapshot flodbd
// serves at /metrics. WithTelemetry(false) drops the histograms and the
// event log (counters stay on) for hot paths that begrudge the clock
// reads.
func ExampleDB_metrics() {
	dir := filepath.Join(os.TempDir(), "flodb-example-metrics")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 10; i++ {
		if err := db.Put(bg, []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			log.Fatal(err)
		}
	}
	if _, _, err := db.Get(bg, []byte("k03")); err != nil {
		log.Fatal(err)
	}

	snap := db.TelemetrySnapshot()
	ops := obs.OpQuantiles(snap) // p50/p90/p99/p999 per op, keyed "put", "get", ...
	fmt.Println("put count:", ops["put"].Count)
	fmt.Println("get count:", ops["get"].Count)
	fmt.Println("put p99 recorded:", ops["put"].P99 > 0)
	for _, m := range snap.Metrics {
		if m.Name == "flodb_puts_total" {
			fmt.Println("flodb_puts_total:", m.Value)
		}
	}
	// Output:
	// put count: 10
	// get count: 1
	// put p99 recorded: true
	// flodb_puts_total: 10
}
