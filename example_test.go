package flodb_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"flodb"
)

// Example demonstrates the complete public API: open, write, read, scan,
// delete, close.
func Example() {
	dir := filepath.Join(os.TempDir(), "flodb-example")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	db.Put([]byte("c"), []byte("3"))
	db.Delete([]byte("b"))

	if v, found, _ := db.Get([]byte("a")); found {
		fmt.Printf("a=%s\n", v)
	}
	pairs, _ := db.Scan([]byte("a"), []byte("z"))
	for _, p := range pairs {
		fmt.Printf("%s=%s\n", p.Key, p.Value)
	}
	// Output:
	// a=1
	// a=1
	// c=3
}

// ExampleOpen shows tuning the memory component, the paper's central
// knob: a larger budget lets the store absorb longer write bursts at
// hash-table speed.
func ExampleOpen() {
	dir := filepath.Join(os.TempDir(), "flodb-example-open")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir, &flodb.Options{
		MemoryBytes:       128 << 20, // 128 MiB total, split 1:4 buffer:table
		MembufferFraction: 0.25,
		DrainThreads:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println(db.Put([]byte("k"), []byte("v")))
	// Output:
	// <nil>
}
