package flodb

import (
	"context"

	"flodb/internal/kv"
)

// Iterator is a streaming cursor over a key range: position with First or
// Seek, advance with Next, read with Key and Value, then check Err and
// Close. Unlike Scan, an Iterator holds only a small prefetch chunk in
// memory, so ranges far larger than the memory component stream in O(1)
// space.
//
//	it, err := db.NewIterator(low, high)
//	if err != nil { ... }
//	defer it.Close()
//	for ok := it.First(); ok; ok = it.Next() {
//		use(it.Key(), it.Value())
//	}
//	if err := it.Err(); err != nil { ... }
//
// Each prefetch chunk is a consistent snapshot acquired through the
// paper's Algorithm 3 scan machinery — piggybacking on concurrent scans
// and transparently restarting on in-place-overwrite conflicts — and
// successive chunks observe monotonically newer snapshots, so the stream
// is a serializable sequence of consistent range fragments. A Scan (one
// unbounded chunk) remains a single point-in-time snapshot.
type Iterator = kv.Iterator

// NewIterator returns a streaming cursor over low <= key < high. Nil
// bounds are open; the bound slices are copied. The returned iterator is
// not safe for concurrent use, but any number of iterators may run
// concurrently with each other and with updates. Close must be called.
//
// The context is captured by the iterator: every refill checks it, so
// canceling it (or a deadline expiring) makes the next positioning call
// return false with the context error in Err — a slow consumer can always
// be cut off promptly.
func (db *DB) NewIterator(ctx context.Context, low, high []byte) (Iterator, error) {
	return db.inner.NewIterator(ctx, low, high)
}
