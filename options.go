package flodb

// An Option tunes a store at Open. Options are applied in order, so later
// options override earlier ones. The zero configuration (no options) gives
// the defaults the paper's evaluation uses, scaled for a development
// machine: 64 MiB of memory split 1/4 Membuffer : 3/4 Memtable, two drain
// threads, WAL on without per-write fsync.
type Option interface {
	apply(*Options)
}

// optionFunc adapts a closure to Option.
type optionFunc func(*Options)

func (f optionFunc) apply(o *Options) { f(o) }

// WithMemory sets the total memory-component budget in bytes, split
// 1/4 Membuffer : 3/4 Memtable as in the paper (§5.1). Default 64 MiB.
func WithMemory(bytes int64) Option {
	return optionFunc(func(o *Options) { o.MemoryBytes = bytes })
}

// WithMembufferFraction overrides the Membuffer's share of the memory
// budget (0 < f < 1). Default 0.25, the paper's empirically chosen split.
func WithMembufferFraction(f float64) Option {
	return optionFunc(func(o *Options) { o.MembufferFraction = f })
}

// WithPartitionBits sets ℓ: the Membuffer has 2^ℓ partitions selected by
// the most significant key bits (§4.3). Default 6.
func WithPartitionBits(bits uint) Option {
	return optionFunc(func(o *Options) { o.PartitionBits = bits })
}

// WithDrainThreads sets the number of background draining threads (§4.2).
// Default 2.
func WithDrainThreads(n int) Option {
	return optionFunc(func(o *Options) { o.DrainThreads = n })
}

// WithRestartThreshold bounds scan restarts before the fallback scan
// blocks writers (Algorithm 3). Default 3.
func WithRestartThreshold(n int) Option {
	return optionFunc(func(o *Options) { o.RestartThreshold = n })
}

// WithoutWAL turns off commit logging: faster writes, no crash durability
// for the memory component.
func WithoutWAL() Option {
	return optionFunc(func(o *Options) { o.DisableWAL = true })
}

// WithSyncWAL fsyncs the commit log on every update (and once per applied
// WriteBatch, however many operations it carries).
func WithSyncWAL() Option {
	return optionFunc(func(o *Options) { o.SyncWAL = true })
}

// Options tune a store as one struct.
//
// Deprecated: pass functional options (WithMemory, WithDrainThreads, ...)
// to Open instead. *Options implements Option so existing call sites keep
// compiling for one release: Open(dir, &Options{...}) applies the whole
// struct, overriding any options that precede it.
type Options struct {
	// MemoryBytes is the total memory-component budget, split 1/4
	// Membuffer : 3/4 Memtable as in the paper (§5.1). Default 64 MiB.
	MemoryBytes int64
	// MembufferFraction overrides the Membuffer's share (0 < f < 1).
	MembufferFraction float64
	// PartitionBits is ℓ: the Membuffer has 2^ℓ partitions selected by
	// the most significant key bits (§4.3). Default 6.
	PartitionBits uint
	// DrainThreads is the number of background draining threads. Default 2.
	DrainThreads int
	// RestartThreshold bounds scan restarts before the fallback scan
	// blocks writers. Default 3.
	RestartThreshold int
	// DisableWAL turns off commit logging: faster writes, no crash
	// durability for the memory component.
	DisableWAL bool
	// SyncWAL fsyncs the commit log on every update.
	SyncWAL bool
}

// apply lets a legacy *Options value be passed to Open as an Option.
func (o *Options) apply(dst *Options) {
	if o != nil {
		*dst = *o
	}
}
