package flodb

// An Option tunes a store at Open. Options are applied in order, so later
// options override earlier ones. The zero configuration (no options) gives
// the defaults the paper's evaluation uses, scaled for a development
// machine: 64 MiB of memory split 1/4 Membuffer : 3/4 Memtable, two drain
// threads, WAL on without per-write fsync.
//
// (The deprecated *Options struct shim from the previous release has been
// removed; pass functional options directly.)
type Option interface {
	apply(*options)
}

// options accumulates the applied Option values for Open.
type options struct {
	memoryBytes       int64
	membufferFraction float64
	partitionBits     uint
	drainThreads      int
	restartThreshold  int
	disableWAL        bool
	syncWAL           bool
}

// optionFunc adapts a closure to Option.
type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithMemory sets the total memory-component budget in bytes, split
// 1/4 Membuffer : 3/4 Memtable as in the paper (§5.1). Default 64 MiB.
func WithMemory(bytes int64) Option {
	return optionFunc(func(o *options) { o.memoryBytes = bytes })
}

// WithMembufferFraction overrides the Membuffer's share of the memory
// budget (0 < f < 1). Default 0.25, the paper's empirically chosen split.
func WithMembufferFraction(f float64) Option {
	return optionFunc(func(o *options) { o.membufferFraction = f })
}

// WithPartitionBits sets ℓ: the Membuffer has 2^ℓ partitions selected by
// the most significant key bits (§4.3). Default 6.
func WithPartitionBits(bits uint) Option {
	return optionFunc(func(o *options) { o.partitionBits = bits })
}

// WithDrainThreads sets the number of background draining threads (§4.2).
// Default 2.
func WithDrainThreads(n int) Option {
	return optionFunc(func(o *options) { o.drainThreads = n })
}

// WithRestartThreshold bounds scan restarts before the fallback scan
// blocks writers (Algorithm 3). Default 3.
func WithRestartThreshold(n int) Option {
	return optionFunc(func(o *options) { o.restartThreshold = n })
}

// WithoutWAL turns off commit logging: faster writes, no crash durability
// for the memory component. Checkpoints of a WAL-less store capture only
// the flushed state.
func WithoutWAL() Option {
	return optionFunc(func(o *options) { o.disableWAL = true })
}

// WithSyncWAL fsyncs the commit log on every update (and once per applied
// WriteBatch, however many operations it carries).
func WithSyncWAL() Option {
	return optionFunc(func(o *options) { o.syncWAL = true })
}
