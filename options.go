package flodb

import (
	"fmt"
	"time"

	"flodb/internal/kv"
)

// An Option tunes a store at Open. Options are applied in order, so later
// options override earlier ones. The zero configuration (no options) gives
// the defaults the paper's evaluation uses, scaled for a development
// machine: 64 MiB of memory split 1/4 Membuffer : 3/4 Memtable, two drain
// threads, WAL on with Buffered durability (logged, no per-write fsync).
//
// Out-of-range values are rejected by Open with a descriptive error —
// never silently clamped.
type Option interface {
	apply(*options)
}

// options accumulates the applied Option values for Open.
type options struct {
	memoryBytes       int64
	membufferFraction float64
	partitionBits     uint
	drainThreads      int
	restartThreshold  int
	disableWAL        bool
	walWriteThrough   bool
	durability        Durability
	policy            ShardPolicy
	policySet         bool
	disableTelemetry  bool

	adaptive       bool
	adaptiveMin    float64
	adaptiveMax    float64
	adaptiveWindow time.Duration

	blockCacheBytes int64
	tableCacheCap   int

	// err records the first invalid option; Open surfaces it.
	err error
}

func (o *options) fail(err error) {
	if o.err == nil {
		o.err = err
	}
}

// optionFunc adapts a closure to Option.
type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithMemory sets the total memory-component budget in bytes, split
// 1/4 Membuffer : 3/4 Memtable as in the paper (§5.1). Default 64 MiB.
// Non-positive budgets are rejected by Open.
func WithMemory(bytes int64) Option {
	return optionFunc(func(o *options) {
		if bytes <= 0 {
			o.fail(fmt.Errorf("flodb: WithMemory(%d): budget must be positive", bytes))
			return
		}
		o.memoryBytes = bytes
	})
}

// WithMembufferFraction overrides the Membuffer's share of the memory
// budget. Default 0.25, the paper's empirically chosen split. Fractions
// outside (0,1) are rejected by Open.
func WithMembufferFraction(f float64) Option {
	return optionFunc(func(o *options) {
		if f <= 0 || f >= 1 {
			o.fail(fmt.Errorf("flodb: WithMembufferFraction(%v): fraction must be in (0,1)", f))
			return
		}
		o.membufferFraction = f
	})
}

// WithAdaptiveMemory enables workload-adaptive sizing of the
// Membuffer↔Memtable split (§4.4): a windowed sensor measures the
// put/get/scan mix and drain-stall time, and a controller moves the
// Membuffer's share of the memory budget — up under update-heavy phases
// (more O(1) absorption), down under scan/read-heavy phases (cheaper
// master-scan drains). Each resize is one generation switch through the
// existing drain path, never a stop-the-world rehash. The controller
// stays inside [0.05, 0.60] by default (WithAdaptiveMemoryRange tunes
// it) and re-evaluates every 100ms (WithAdaptiveMemoryWindow).
//
// WithMembufferFraction still sets the STARTING split; without
// WithAdaptiveMemory it stays pinned there for the store's lifetime.
// Stats reports the live split (MembufferFraction), the resize count
// (MembufferResizes) and the sensor's window rates.
func WithAdaptiveMemory() Option {
	return optionFunc(func(o *options) { o.adaptive = true })
}

// WithAdaptiveMemoryRange bounds the adaptive controller to
// [min, max] ⊂ (0,1) and implies WithAdaptiveMemory. Open rejects
// min >= max and values outside (0,1).
func WithAdaptiveMemoryRange(min, max float64) Option {
	return optionFunc(func(o *options) {
		if min <= 0 || min >= 1 || max <= 0 || max >= 1 || min >= max {
			o.fail(fmt.Errorf("flodb: WithAdaptiveMemoryRange(%v, %v): want 0 < min < max < 1", min, max))
			return
		}
		o.adaptive = true
		o.adaptiveMin, o.adaptiveMax = min, max
	})
}

// WithAdaptiveMemoryWindow sets the sensor window — how often the
// controller re-evaluates the split — and implies WithAdaptiveMemory.
// Default 100ms; non-positive windows are rejected by Open.
func WithAdaptiveMemoryWindow(d time.Duration) Option {
	return optionFunc(func(o *options) {
		if d <= 0 {
			o.fail(fmt.Errorf("flodb: WithAdaptiveMemoryWindow(%v): window must be positive", d))
			return
		}
		o.adaptive = true
		o.adaptiveWindow = d
	})
}

// WithPartitionBits sets ℓ: the Membuffer has 2^ℓ partitions selected by
// the most significant key bits (§4.3). Default 6; values above 16 are
// rejected by Open.
func WithPartitionBits(bits uint) Option {
	return optionFunc(func(o *options) {
		if bits > 16 {
			o.fail(fmt.Errorf("flodb: WithPartitionBits(%d): at most 16 bits supported", bits))
			return
		}
		o.partitionBits = bits
	})
}

// WithDrainThreads sets the number of background draining threads (§4.2).
// Default 2. Non-positive counts are rejected by Open.
func WithDrainThreads(n int) Option {
	return optionFunc(func(o *options) {
		if n <= 0 {
			o.fail(fmt.Errorf("flodb: WithDrainThreads(%d): count must be positive", n))
			return
		}
		o.drainThreads = n
	})
}

// WithRestartThreshold bounds scan restarts before the fallback scan
// blocks writers (Algorithm 3). Default 3. Non-positive thresholds are
// rejected by Open.
func WithRestartThreshold(n int) Option {
	return optionFunc(func(o *options) {
		if n <= 0 {
			o.fail(fmt.Errorf("flodb: WithRestartThreshold(%d): threshold must be positive", n))
			return
		}
		o.restartThreshold = n
	})
}

// A ShardPolicy describes how a store is partitioned across independent
// FloDB engines: how many shards it starts with, how keys route to them,
// and whether the layout may change at runtime. Construct one with
// Static, HashSharded or Adaptive and pass it to WithShardPolicy.
type ShardPolicy struct {
	shards    int
	hashed    bool
	dynamic   bool
	minShards int
	maxShards int
	err       error
}

// Static partitions the keyspace into n fixed, uniform ranges — one
// engine each, with its own directory (dir/shard-NNN), WAL, memory
// component and compactor, behind the same DB surface. The count and
// boundaries are recorded in the SHARDS manifest at creation and never
// change; reopening with a different Static count is an error, while
// reopening with no shard option adopts whatever the manifest records.
// Static(1) is the default unsharded store.
func Static(n int) ShardPolicy {
	p := ShardPolicy{shards: n}
	if n < 1 {
		p.err = fmt.Errorf("flodb: Static(%d): shard count must be >= 1", n)
	}
	return p
}

// HashSharded routes each key to one of n shards by hash instead of by
// range. Point operations spread evenly whatever the key distribution,
// at a price: every shard spans the whole keyspace, so range scans and
// iterators touch all n shards and re-sort, and the layout can never be
// split or merged — Adaptive over a hash-sharded store fails with
// ErrDynamicHashRouting.
func HashSharded(n int) ShardPolicy {
	p := ShardPolicy{shards: n, hashed: true}
	if n < 1 {
		p.err = fmt.Errorf("flodb: HashSharded(%d): shard count must be >= 1", n)
	}
	return p
}

// Adaptive starts the store at min range-partitioned shards and lets a
// per-shard workload sensor drive the layout at runtime: a shard drawing
// an outsized share of the traffic is split at its observed median key
// (up to max shards), and adjacent cold shards merge back (down to min).
// Every change bumps the topology epoch (DB.ShardTopology), commits
// crash-safely through the SHARDS manifest, and leaves open snapshots
// and iterators reading their pinned epoch. Reopening an Adaptive store
// adopts however many shards the last run left behind.
func Adaptive(min, max int) ShardPolicy {
	p := ShardPolicy{dynamic: true, minShards: min, maxShards: max}
	if min < 1 || max < min {
		p.err = fmt.Errorf("flodb: Adaptive(%d, %d): want 1 <= min <= max", min, max)
	}
	return p
}

// WithShardPolicy sets how the store is partitioned: Static(n) for a
// fixed uniform range split, HashSharded(n) for hash routing, or
// Adaptive(min, max) for sensor-driven dynamic splitting and merging.
// The memory budget (WithMemory) and block cache (WithBlockCacheSize)
// are TOTALS, split evenly across however many shards are live.
//
// See the README's sharding section for the cross-shard semantics
// (per-shard batch atomicity, the snapshot write barrier, checkpoint
// layout, topology epochs).
func WithShardPolicy(p ShardPolicy) Option {
	return optionFunc(func(o *options) {
		if p.err != nil {
			o.fail(p.err)
			return
		}
		o.policy = p
		o.policySet = true
	})
}

// WithShards is shorthand for WithShardPolicy(Static(n)): a fixed
// uniform range split across n engines. WithShards(1) is the default
// unsharded store.
func WithShards(n int) Option {
	return optionFunc(func(o *options) {
		if n < 1 {
			o.fail(fmt.Errorf("flodb: WithShards(%d): count must be >= 1", n))
			return
		}
		o.policy = Static(n)
		o.policySet = true
	})
}

// WithBlockCacheSize sets the budget, in bytes, of the shared cache of
// parsed sstable blocks on the disk read path (default 32 MiB). Repeat
// reads of warm blocks skip both the I/O and the decode. On a sharded
// store the budget is the TOTAL, split evenly across shards like
// WithMemory. Non-positive sizes are rejected by Open; to measure the
// uncached read path, use a 1-byte cache (nothing fits, every read
// misses).
func WithBlockCacheSize(bytes int64) Option {
	return optionFunc(func(o *options) {
		if bytes <= 0 {
			o.fail(fmt.Errorf("flodb: WithBlockCacheSize(%d): size must be positive", bytes))
			return
		}
		o.blockCacheBytes = bytes
	})
}

// WithTableCacheCapacity bounds how many sstable readers (one open file
// descriptor plus a parsed index and bloom filter each) the store keeps
// resident, per shard (default 256). The LRU evicts cold readers;
// readers in use by iterators or compactions are pinned and never closed
// underneath their users. Raise it when the tree holds more tables than
// the default and re-opens show up in TableCacheMisses; lower it under
// tight fd limits. Non-positive capacities are rejected by Open.
func WithTableCacheCapacity(n int) Option {
	return optionFunc(func(o *options) {
		if n <= 0 {
			o.fail(fmt.Errorf("flodb: WithTableCacheCapacity(%d): capacity must be positive", n))
			return
		}
		o.tableCacheCap = n
	})
}

// WithTelemetry turns the optional half of the observability layer on
// (the default) or off. Enabled, every operation records into per-op
// latency histograms and lifecycle moments (flushes, compactions,
// generation seals, WAL rotations and stalls, snapshot pins, resize
// epochs) land in a bounded structured event log — the data behind
// DB.TelemetrySnapshot, DB.TelemetryEvents and flodbd's /debug
// endpoints. Disabled, the histograms and the event log disappear and
// with them every time.Now() on the hot paths; the plain Stats
// counters stay on either way. The obsbench figure measures the
// enabled-vs-disabled delta (≤ a few percent on uniform writes).
func WithTelemetry(enabled bool) Option {
	return optionFunc(func(o *options) { o.disableTelemetry = !enabled })
}

// WithWALWriteThrough makes the commit log hand every record to the OS
// as it is appended instead of staging it in a user-space buffer. Acked
// Buffered writes then survive a process kill (SIGKILL, panic); only a
// machine crash can still lose the un-fsynced window. Replica nodes in
// cluster mode run with this on — it is what makes a quorum ack mean
// "survives kill -9 of a replica" — at the cost of a write() syscall
// per append on the buffered path.
func WithWALWriteThrough() Option {
	return optionFunc(func(o *options) { o.walWriteThrough = true })
}

// WithoutWAL turns off commit logging: every write is DurabilityNone
// (fastest, no crash durability for the memory component), and requesting
// a logged durability class per operation fails with ErrNotSupported.
// Checkpoints of a WAL-less store capture only the flushed state.
func WithoutWAL() Option {
	return optionFunc(func(o *options) { o.disableWAL = true })
}

// DurabilityOption is both an Option (the store's default durability at
// Open) and a WriteOption (a per-operation override), so one constructor
// serves both sites:
//
//	db, _ := flodb.Open(dir, flodb.WithDurability(flodb.DurabilitySync))
//	db.Put(ctx, k, v, flodb.WithDurability(flodb.DurabilityNone))
type DurabilityOption struct{ d Durability }

func (o DurabilityOption) apply(opts *options) {
	if !o.d.Valid() {
		opts.fail(fmt.Errorf("flodb: WithDurability(%v): unknown class", o.d))
		return
	}
	opts.durability = o.d
}

// ApplyWrite implements kv.WriteOption for per-operation use.
func (o DurabilityOption) ApplyWrite(w *kv.WriteOptions) {
	if o.d != DurabilityDefault {
		w.Durability = o.d
	}
}

// WithDurability sets the durability class — the store-wide default when
// passed to Open (replacing the removed all-or-nothing WithSyncWAL), or a
// single operation's class when passed to Put, Delete or Apply. See
// Durability for the classes and their crash guarantees.
func WithDurability(d Durability) DurabilityOption { return DurabilityOption{d: d} }

// WithSync is shorthand for WithDurability(DurabilitySync): at Open it
// makes every write group-commit an fsync before acknowledging; on a
// single Put, Delete or Apply it makes just that operation Sync-durable.
func WithSync() DurabilityOption { return DurabilityOption{d: DurabilitySync} }
