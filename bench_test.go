// Benchmarks regenerating the paper's figures through the testing.B
// interface: `go test -bench=Fig -benchmem` runs a trimmed version of
// every figure; `cmd/flobench` runs the full sweeps with table output.
//
// Each benchmark reports the figure's headline metric via b.ReportMetric,
// so `go test -bench` output doubles as a compact reproduction record.
package flodb_test

import (
	"testing"
	"time"

	"flodb/internal/figures"
	"flodb/internal/harness"
)

// benchConfig trims the sweeps so the full suite stays in CI-sized time.
func benchConfig(b *testing.B) figures.Config {
	b.Helper()
	return figures.Config{
		ScratchDir: b.TempDir(),
		Duration:   300 * time.Millisecond,
		Quick:      true,
	}
}

// runFigure executes fn once per b.N (figures are macro-benchmarks; the
// interesting output is the reported metric, not ns/op).
func runFigure(b *testing.B, fn func(figures.Config) (*harness.Table, error), metricRow, metricCol int, metricName string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		if metricRow < len(tbl.Rows) && metricCol < len(tbl.Cols) {
			b.ReportMetric(tbl.Cells[metricRow][metricCol], metricName)
		}
	}
}

func BenchmarkFig03SkiplistLatencyVsMemory(b *testing.B) {
	runFigure(b, figures.Fig3, 1, 2, "norm-write-lat-largest")
}

func BenchmarkFig04HashLatencyVsMemory(b *testing.B) {
	runFigure(b, figures.Fig4, 1, 2, "norm-write-lat-largest")
}

func BenchmarkFig05HashTableThroughput(b *testing.B) {
	runFigure(b, figures.Fig5, 0, 0, "Mops-32K-1t")
}

func BenchmarkFig07SkiplistThroughput(b *testing.B) {
	runFigure(b, figures.Fig7, 0, 0, "Mops-32K-1t")
}

func BenchmarkFig08MultiInsert(b *testing.B) {
	runFigure(b, figures.Fig8, 1, 0, "multi-Mops-nbhd10")
}

func BenchmarkFig09WriteOnly(b *testing.B) {
	runFigure(b, figures.Fig9, 0, 0, "flodb-Mops-1t")
}

func BenchmarkFig10ReadOnly(b *testing.B) {
	runFigure(b, figures.Fig10, 0, 0, "flodb-Mops-1t")
}

func BenchmarkFig11Mixed(b *testing.B) {
	runFigure(b, figures.Fig11, 0, 0, "flodb-Mops-1t")
}

func BenchmarkFig12OneWriter(b *testing.B) {
	runFigure(b, figures.Fig12, 0, 0, "flodb-Mops-1t")
}

func BenchmarkFig13ScanWrite(b *testing.B) {
	runFigure(b, figures.Fig13, 0, 0, "flodb-Mkeys-1t")
}

func BenchmarkFig14ScanRatio(b *testing.B) {
	runFigure(b, figures.Fig14, 2, 0, "Mkeys-2pct")
}

func BenchmarkFig15MemorySweepWrites(b *testing.B) {
	runFigure(b, figures.Fig15, 0, 0, "flodb-Mops-smallest")
}

func BenchmarkFig16SkewedMemorySweep(b *testing.B) {
	runFigure(b, figures.Fig16, 0, 0, "flodb-Mops-smallest")
}

func BenchmarkFig17Ablation(b *testing.B) {
	runFigure(b, figures.Fig17, 0, 0, "multiinsert-Mops-1GB1t")
}

func BenchmarkScanFallbackStats(b *testing.B) {
	runFigure(b, figures.ScanStats, 0, 0, "fallback-pct")
}

func BenchmarkAPIBatchIter(b *testing.B) {
	runFigure(b, figures.APIBench, 0, 0, "flodb-batch-Mops")
}
