package flodb_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"flodb"
	"flodb/internal/keys"
	"flodb/internal/shard"
)

// These tests pin the redesigned topology surface: shard policies set
// at Open, the versioned Topology readable through ShardTopology, the
// typed rejection errors, and the epoch/split counters in Stats.

func spread(i uint64) []byte { return keys.EncodeUint64(i * 0x9e3779b97f4a7c15) }

func TestShardPolicyStatic(t *testing.T) {
	db, err := flodb.Open(t.TempDir(), flodb.WithShardPolicy(flodb.Static(4)), flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	topo := db.ShardTopology()
	if topo.Epoch != 1 || topo.Shards != 4 || topo.Routing != "range" {
		t.Fatalf("Static(4) topology = %+v", topo)
	}
	if len(topo.Boundaries) != 3 {
		t.Fatalf("Static(4) has %d boundaries, want 3", len(topo.Boundaries))
	}
}

func TestShardPolicyHashRouting(t *testing.T) {
	db, err := flodb.Open(t.TempDir(), flodb.WithShardPolicy(flodb.HashSharded(3)), flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	topo := db.ShardTopology()
	if topo.Routing != "hash" || topo.Shards != 3 || topo.Boundaries != nil {
		t.Fatalf("HashSharded(3) topology = %+v", topo)
	}
}

func TestShardPolicyAdaptiveOpensAtMin(t *testing.T) {
	dir := t.TempDir()
	db, err := flodb.Open(dir, flodb.WithShardPolicy(flodb.Adaptive(2, 6)), flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Shards(); got != 2 {
		t.Fatalf("Adaptive(2, 6) opened at %d shards, want MinShards=2", got)
	}
	if err := db.Put(bg, spread(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen adopts whatever layout the last run left, not MinShards.
	r, err := flodb.Open(dir, flodb.WithShardPolicy(flodb.Adaptive(2, 6)), flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok, err := r.Get(bg, spread(1)); err != nil || !ok || string(v) != "v" {
		t.Fatalf("adaptive reopen lost data: %q %v %v", v, ok, err)
	}
}

func TestAdaptiveOnHashedStoreFails(t *testing.T) {
	dir := t.TempDir()
	db, err := flodb.Open(dir, flodb.WithShardPolicy(flodb.HashSharded(2)), flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Hash routing has no boundaries to move, so dynamic splitting can
	// never apply to it: the combination is a typed, errors.Is-able no.
	_, err = flodb.Open(dir, flodb.WithShardPolicy(flodb.Adaptive(2, 4)))
	if !errors.Is(err, flodb.ErrDynamicHashRouting) {
		t.Fatalf("Adaptive over hashed store: %v, want ErrDynamicHashRouting", err)
	}
}

func TestBadShardPoliciesRejectedAtOpen(t *testing.T) {
	for _, p := range []flodb.ShardPolicy{
		flodb.Static(0),
		flodb.HashSharded(-1),
		flodb.Adaptive(0, 4),
		flodb.Adaptive(4, 2),
	} {
		if _, err := flodb.Open(t.TempDir(), flodb.WithShardPolicy(p)); err == nil {
			t.Fatalf("policy %+v accepted", p)
		}
	}
}

func TestFutureManifestRejected(t *testing.T) {
	dir := t.TempDir()
	// A manifest stamped by a "newer binary": version 99.
	record := []byte(`{"version": 99, "routing": "range", "epoch": 7, "shard_dirs": [{"dir": "shard-000"}]}` + "\n")
	if err := os.WriteFile(filepath.Join(dir, "SHARDS"), record, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := flodb.Open(dir)
	var fme *flodb.FutureManifestError
	if !errors.As(err, &fme) {
		t.Fatalf("open on future manifest: %v, want FutureManifestError", err)
	}
	if fme.Version != 99 || fme.Dir != dir {
		t.Fatalf("FutureManifestError fields = %+v", fme)
	}
}

// TestShardTopologyTracksEpoch splits a store's hot shard between two
// public opens: the epoch change committed to the SHARDS manifest must
// surface through ShardTopology and the Stats counters on the reopened
// store.
func TestShardTopologyTracksEpoch(t *testing.T) {
	dir := t.TempDir()
	db, err := flodb.Open(dir, flodb.WithShards(2), flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 256; i++ {
		if err := db.Put(bg, spread(i), spread(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Force one split through the engine-level API, as the adaptive
	// controller would.
	s, err := shard.Open(shard.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Split(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := flodb.Open(dir, flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	topo := r.ShardTopology()
	if topo.Epoch != 2 || topo.Shards != 3 {
		t.Fatalf("post-split topology = epoch %d, %d shards; want 2, 3", topo.Epoch, topo.Shards)
	}
	if len(topo.Boundaries) != 2 {
		t.Fatalf("post-split boundaries = %d, want 2", len(topo.Boundaries))
	}
	if st := r.Stats(); st.ShardEpoch != 2 {
		t.Fatalf("Stats().ShardEpoch = %d, want 2", st.ShardEpoch)
	}
	for i := uint64(0); i < 256; i++ {
		if _, ok, err := r.Get(bg, spread(i)); err != nil || !ok {
			t.Fatalf("key %d lost across split (ok=%v err=%v)", i, ok, err)
		}
	}
}

// TestUnshardedTopology pins the degenerate contract: a single-engine
// store still answers ShardTopology with a coherent one-shard view.
func TestUnshardedTopology(t *testing.T) {
	db, err := flodb.Open(t.TempDir(), flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	topo := db.ShardTopology()
	if topo.Epoch != 1 || topo.Shards != 1 || topo.Routing != "range" || topo.Boundaries != nil {
		t.Fatalf("unsharded topology = %+v", topo)
	}
}
