// Sessionstore: the skewed session-state scenario from the paper's
// introduction ("maintaining session states in user-facing applications",
// evaluated in §5.4). A small set of hot sessions receives nearly all
// updates; FloDB's in-place updates keep the hot set resident in memory
// instead of flooding the store with duplicate versions — run it and watch
// the flush counter stay low while millions of updates land.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"flodb"
)

const (
	sessions    = 10000
	hotSessions = 200 // 2% of sessions take 98% of traffic (§5.4)
	workers     = 8
	updatesEach = 50000
)

func sessionKey(id int) []byte {
	return []byte(fmt.Sprintf("session:%08d", id))
}

func main() {
	ctx := context.Background()
	dir := filepath.Join(os.TempDir(), "flodb-sessionstore")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir, flodb.WithMemory(16<<20), flodb.WithoutWAL())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Seed every session.
	for i := 0; i < sessions; i++ {
		if err := db.Put(ctx, sessionKey(i), []byte("state=new")); err != nil {
			log.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			state := make([]byte, 0, 64)
			for i := 0; i < updatesEach; i++ {
				var id int
				if rng.Intn(100) < 98 {
					id = rng.Intn(hotSessions) // hot
				} else {
					id = hotSessions + rng.Intn(sessions-hotSessions)
				}
				state = state[:0]
				state = append(state, fmt.Sprintf("state=active;worker=%d;op=%d", w, i)...)
				if err := db.Put(ctx, sessionKey(id), state); err != nil {
					log.Fatal(err)
				}
				// Occasionally read back the session (50/50 mix of §5.4).
				if _, _, err := db.Get(ctx, sessionKey(id)); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := workers * updatesEach
	st := db.Stats()
	fmt.Printf("%d updates+reads over %d sessions in %v (%.2f Mops/s)\n",
		2*total, sessions, elapsed.Round(time.Millisecond),
		float64(2*total)/elapsed.Seconds()/1e6)
	fmt.Printf("in-place efficiency: %d updates caused only %d flushes\n", total, st.Flushes)
	fmt.Printf("membuffer-hits=%d memtable-writes=%d\n", st.MembufferHits, st.MemtableWrites)

	// Spot-check a hot session's final state is a valid latest write.
	v, found, _ := db.Get(ctx, sessionKey(0))
	fmt.Printf("session 0: found=%v state=%q\n", found, v)
}
