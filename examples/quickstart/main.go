// Quickstart: the complete FloDB public API in one runnable program —
// open with options, put, get, delete, atomic write batch, streaming
// iterator, scan, stats, close, reopen (recovery).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"flodb"
)

func main() {
	ctx := context.Background()
	dir := filepath.Join(os.TempDir(), "flodb-quickstart")
	os.RemoveAll(dir)

	// No options = paper-style defaults; tune with functional options,
	// e.g. flodb.WithMemory(128<<20), flodb.WithDrainThreads(4),
	// flodb.WithDurability(flodb.DurabilitySync).
	db, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Point writes and reads.
	if err := db.Put(ctx, []byte("city:lausanne"), []byte("EPFL")); err != nil {
		log.Fatal(err)
	}
	db.Put(ctx, []byte("city:belgrade"), []byte("EuroSys 2017"))
	db.Put(ctx, []byte("city:zurich"), []byte("ETH"))

	v, found, err := db.Get(ctx, []byte("city:lausanne"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get city:lausanne -> %q (found=%v)\n", v, found)

	// Overwrites are in place: the freshest value always wins.
	db.Put(ctx, []byte("city:lausanne"), []byte("EPFL, updated"))
	v, _, _ = db.Get(ctx, []byte("city:lausanne"))
	fmt.Printf("after overwrite  -> %q\n", v)

	// Deletes are tombstones; the key disappears from reads and scans.
	db.Delete(ctx, []byte("city:zurich"))
	if _, found, _ := db.Get(ctx, []byte("city:zurich")); !found {
		fmt.Println("city:zurich deleted")
	}

	// Write batches commit atomically: one WAL record, one group-committed
	// fsync under flodb.WithSync(), all-or-nothing recovery after a crash.
	b := flodb.NewWriteBatch()
	b.Put([]byte("city:dresden"), []byte("EuroSys 2019"))
	b.Put([]byte("city:rennes"), []byte("EuroSys 2022"))
	b.Delete([]byte("city:belgrade"))
	if err := db.Apply(ctx, b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied a %d-op batch atomically\n", b.Len())

	// Iterators stream a range in key order without materializing it —
	// this loop would use the same memory over a billion keys.
	it, err := db.NewIterator(ctx, []byte("city:"), []byte("city:\xff"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("iterate city:*")
	for ok := it.First(); ok; ok = it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	it.Close()

	// Scan materializes the same range as one point-in-time snapshot.
	pairs, err := db.Scan(ctx, []byte("city:"), []byte("city:\xff"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan city:* -> %d pairs\n", len(pairs))

	st := db.Stats()
	fmt.Printf("stats: puts=%d gets=%d scans=%d iterators=%d batches=%d membuffer-hits=%d\n",
		st.Puts, st.Gets, st.Scans, st.Iterators, st.Batches, st.MembufferHits)

	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen: everything survives across restarts.
	db2, err := flodb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	v, found, _ = db2.Get(ctx, []byte("city:rennes"))
	fmt.Printf("after reopen: city:rennes -> %q (found=%v)\n", v, found)
}
