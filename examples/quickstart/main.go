// Quickstart: the complete FloDB public API in one runnable program —
// open, put, get, delete, scan, stats, close, reopen (recovery).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"flodb"
)

func main() {
	dir := filepath.Join(os.TempDir(), "flodb-quickstart")
	os.RemoveAll(dir)

	db, err := flodb.Open(dir, nil) // nil options = paper-style defaults
	if err != nil {
		log.Fatal(err)
	}

	// Point writes and reads.
	if err := db.Put([]byte("city:lausanne"), []byte("EPFL")); err != nil {
		log.Fatal(err)
	}
	db.Put([]byte("city:belgrade"), []byte("EuroSys 2017"))
	db.Put([]byte("city:zurich"), []byte("ETH"))

	v, found, err := db.Get([]byte("city:lausanne"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get city:lausanne -> %q (found=%v)\n", v, found)

	// Overwrites are in place: the freshest value always wins.
	db.Put([]byte("city:lausanne"), []byte("EPFL, updated"))
	v, _, _ = db.Get([]byte("city:lausanne"))
	fmt.Printf("after overwrite  -> %q\n", v)

	// Deletes are tombstones; the key disappears from reads and scans.
	db.Delete([]byte("city:zurich"))
	if _, found, _ := db.Get([]byte("city:zurich")); !found {
		fmt.Println("city:zurich deleted")
	}

	// Range scans return a consistent snapshot in key order.
	pairs, err := db.Scan([]byte("city:"), []byte("city:\xff"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scan city:*")
	for _, p := range pairs {
		fmt.Printf("  %s = %s\n", p.Key, p.Value)
	}

	st := db.Stats()
	fmt.Printf("stats: puts=%d gets=%d scans=%d membuffer-hits=%d\n",
		st.Puts, st.Gets, st.Scans, st.MembufferHits)

	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen: everything survives across restarts.
	db2, err := flodb.Open(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	v, found, _ = db2.Get([]byte("city:belgrade"))
	fmt.Printf("after reopen: city:belgrade -> %q (found=%v)\n", v, found)
}
