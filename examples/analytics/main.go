// Analytics: consistent range scans running concurrently with a heavy
// update stream — the capability §3.2 highlights (FloDB is "the first LSM
// system to simultaneously support consistent scans and in-place
// updates"). A writer continuously reprices a catalog in whole-category
// bursts, each burst committed as ONE atomic WriteBatch; analytic scans
// aggregate a category and verify they always observe exactly one price —
// scans never see a partially applied batch.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"flodb"
)

const (
	categories   = 8
	itemsPerCat  = 500
	scanRounds   = 200
	writerBursts = 1000
)

func itemKey(cat, item int) []byte {
	k := make([]byte, 4+4)
	binary.BigEndian.PutUint32(k[0:], uint32(cat))
	binary.BigEndian.PutUint32(k[4:], uint32(item))
	return k
}

func catBounds(cat int) (lo, hi []byte) {
	return itemKey(cat, 0), itemKey(cat+1, 0)
}

func main() {
	ctx := context.Background()
	dir := filepath.Join(os.TempDir(), "flodb-analytics")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir, flodb.WithMemory(8<<20), flodb.WithoutWAL())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	price := make([]byte, 8)
	for cat := 0; cat < categories; cat++ {
		for item := 0; item < itemsPerCat; item++ {
			binary.BigEndian.PutUint64(price, 100)
			if err := db.Put(ctx, itemKey(cat, item), price); err != nil {
				log.Fatal(err)
			}
		}
	}

	stop := make(chan struct{})
	var bursts atomic.Uint64
	var wg sync.WaitGroup

	// Writer: reprices whole categories in bursts; each burst is one
	// atomic WriteBatch, so all items of the category change price
	// together or not at all.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 8)
		batch := flodb.NewWriteBatch()
		for b := 1; b <= writerBursts; b++ {
			select {
			case <-stop:
				return
			default:
			}
			cat := b % categories
			binary.BigEndian.PutUint64(buf, uint64(100+b))
			batch.Reset()
			for item := 0; item < itemsPerCat; item++ {
				batch.Put(itemKey(cat, item), buf)
			}
			if err := db.Apply(ctx, batch); err != nil {
				log.Fatal(err)
			}
			bursts.Add(1)
		}
	}()

	// Analysts: scan a category and check the snapshot is not torn.
	// Because bursts commit atomically, every scan must observe exactly
	// ONE price across the category — never a burst boundary.
	torn := 0
	start := time.Now()
	for round := 0; round < scanRounds; round++ {
		cat := round % categories
		lo, hi := catBounds(cat)
		pairs, err := db.Scan(ctx, lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		if len(pairs) != itemsPerCat {
			log.Fatalf("scan lost items: %d of %d", len(pairs), itemsPerCat)
		}
		prices := map[uint64]int{}
		for _, p := range pairs {
			prices[binary.BigEndian.Uint64(p.Value)]++
		}
		if len(prices) > 1 {
			torn++
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	st := db.Stats()
	fmt.Printf("%d scans over %d repricing bursts in %v\n", scanRounds, bursts.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("torn snapshots observed: %d (must be 0)\n", torn)
	fmt.Printf("scan restarts=%d fallback scans=%d\n", st.ScanRestarts, st.FallbackScans)
	if torn > 0 {
		os.Exit(1)
	}
}
