// Messagequeue: the write-intensive message-queue scenario from the
// paper's introduction ("message queues that undergo a high number of
// updates"). Multiple producers append messages; a consumer drains them
// with range scans; acknowledged messages are deleted. FloDB's Membuffer
// absorbs the bursty appends while the consumer's scans run concurrently
// against the sorted Memtable and disk.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"flodb"
)

const (
	producers       = 4
	messagesPerProd = 5000
)

// queueKey orders messages globally: "q:" + 8-byte big-endian sequence.
func queueKey(seq uint64) []byte {
	k := make([]byte, 2+8)
	copy(k, "q:")
	binary.BigEndian.PutUint64(k[2:], seq)
	return k
}

func main() {
	ctx := context.Background()
	dir := filepath.Join(os.TempDir(), "flodb-messagequeue")
	os.RemoveAll(dir)
	db, err := flodb.Open(dir,
		flodb.WithMemory(8<<20),
		flodb.WithoutWAL(), // queue contents are reconstructible; favor speed
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	var nextSeq atomic.Uint64
	var produced, consumed atomic.Uint64
	var wg sync.WaitGroup

	// Producers enqueue concurrently.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < messagesPerProd; i++ {
				seq := nextSeq.Add(1)
				msg := fmt.Sprintf("producer-%d message-%d", p, i)
				if err := db.Put(ctx, queueKey(seq), []byte(msg)); err != nil {
					log.Fatal(err)
				}
				produced.Add(1)
			}
		}(p)
	}

	// Consumer streams the queue with an iterator while producers are
	// still active — the queue is never materialized — and acknowledges
	// each drain round with one atomic delete batch. It always restarts
	// from the queue head: sequence numbers are allocated before their Put
	// lands, so a resumed cursor could otherwise skip a message that is
	// still in flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		lo, hi := queueKey(0), queueKey(^uint64(0))
		acks := flodb.NewWriteBatch()
		for {
			it, err := db.NewIterator(ctx, lo, hi)
			if err != nil {
				log.Fatal(err)
			}
			acks.Reset()
			for ok := it.First(); ok; ok = it.Next() {
				acks.Delete(it.Key())
			}
			if err := it.Err(); err != nil {
				log.Fatal(err)
			}
			it.Close()
			if err := db.Apply(ctx, acks); err != nil { // acknowledge atomically
				log.Fatal(err)
			}
			consumed.Add(uint64(acks.Len()))
			if consumed.Load() >= producers*messagesPerProd {
				return
			}
			if acks.Len() == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	start := time.Now()
	wg.Wait()
	<-done
	elapsed := time.Since(start)

	fmt.Printf("produced %d, consumed %d messages in %v (%.0f msgs/s end to end)\n",
		produced.Load(), consumed.Load(), elapsed.Round(time.Millisecond),
		float64(consumed.Load())/elapsed.Seconds())

	// The queue must be empty now.
	rest, _ := db.Scan(ctx, []byte("q:"), []byte("q:\xff"))
	fmt.Printf("remaining in queue: %d\n", len(rest))
	st := db.Stats()
	fmt.Printf("stats: membuffer-hits=%d memtable-writes=%d flushes=%d scan-restarts=%d\n",
		st.MembufferHits, st.MemtableWrites, st.Flushes, st.ScanRestarts)
}
