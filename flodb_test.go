package flodb_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"flodb"
	"flodb/internal/keys"
)

func openPublic(t *testing.T, opts *flodb.Options) *flodb.DB {
	t.Helper()
	db, err := flodb.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db := openPublic(t, nil)
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, found, err := db.Get([]byte("k"))
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("Get = %q %v %v", v, found, err)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := db.Get([]byte("k")); found {
		t.Fatal("deleted key visible")
	}
}

func TestPublicAPIClonesInputs(t *testing.T) {
	// The public API must copy key and value, so callers can reuse
	// buffers — the core retains slices.
	db := openPublic(t, nil)
	key := []byte("mutable-key")
	val := []byte("mutable-val")
	db.Put(key, val)
	key[0], val[0] = 'X', 'X'
	v, found, _ := db.Get([]byte("mutable-key"))
	if !found || string(v) != "mutable-val" {
		t.Fatalf("input aliasing leaked into the store: %q %v", v, found)
	}
}

func TestPublicAPIClonesOutputs(t *testing.T) {
	db := openPublic(t, nil)
	db.Put([]byte("k"), []byte("value"))
	v, _, _ := db.Get([]byte("k"))
	v[0] = 'X'
	v2, _, _ := db.Get([]byte("k"))
	if !bytes.Equal(v2, []byte("value")) {
		t.Fatal("mutating a returned value corrupted the store")
	}
}

func TestPublicAPIScan(t *testing.T) {
	db := openPublic(t, &flodb.Options{MemoryBytes: 1 << 20})
	for i := 0; i < 100; i++ {
		db.Put(keys.EncodeUint64(uint64(i)), []byte(fmt.Sprint(i)))
	}
	pairs, err := db.Scan(keys.EncodeUint64(20), keys.EncodeUint64(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("scan returned %d", len(pairs))
	}
	for i, p := range pairs {
		if keys.DecodeUint64(p.Key) != uint64(20+i) {
			t.Fatalf("pair %d key %x", i, p.Key)
		}
	}
}

func TestPublicAPIOptions(t *testing.T) {
	db := openPublic(t, &flodb.Options{
		MemoryBytes:       2 << 20,
		MembufferFraction: 0.5,
		PartitionBits:     4,
		DrainThreads:      1,
		RestartThreshold:  5,
		DisableWAL:        true,
	})
	for i := 0; i < 1000; i++ {
		if err := db.Put(keys.EncodeUint64(uint64(i)*0x9e3779b97f4a7c15), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Puts != 1000 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := flodb.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		db.Put(keys.EncodeUint64(uint64(i)), keys.EncodeUint64(uint64(i)))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := flodb.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 500; i += 37 {
		v, found, err := db2.Get(keys.EncodeUint64(uint64(i)))
		if err != nil || !found || keys.DecodeUint64(v) != uint64(i) {
			t.Fatalf("key %d after reopen: %v %v %v", i, v, found, err)
		}
	}
}

func TestPublicAPIConcurrent(t *testing.T) {
	db := openPublic(t, &flodb.Options{MemoryBytes: 1 << 20, DisableWAL: true})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := keys.EncodeUint64(uint64(w*2000+i) * 0x9e3779b97f4a7c15)
				if err := db.Put(k, keys.EncodeUint64(uint64(i))); err != nil {
					panic(err)
				}
				if _, _, err := db.Get(k); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	pairs, err := db.Scan(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 8000 {
		t.Fatalf("scan found %d of 8000 keys", len(pairs))
	}
}

func TestErrClosedExported(t *testing.T) {
	db, err := flodb.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != flodb.ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
