package flodb_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"flodb"
	"flodb/internal/keys"
)

// bg is the context threaded through every store call in these tests.
var bg = context.Background()

func openPublic(t *testing.T, opts ...flodb.Option) *flodb.DB {
	t.Helper()
	db, err := flodb.Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db := openPublic(t)
	if err := db.Put(bg, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, found, err := db.Get(bg, []byte("k"))
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("Get = %q %v %v", v, found, err)
	}
	if err := db.Delete(bg, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := db.Get(bg, []byte("k")); found {
		t.Fatal("deleted key visible")
	}
}

func TestPublicAPIClonesInputs(t *testing.T) {
	// The public API must copy key and value, so callers can reuse
	// buffers — the core retains slices.
	db := openPublic(t)
	key := []byte("mutable-key")
	val := []byte("mutable-val")
	db.Put(bg, key, val)
	key[0], val[0] = 'X', 'X'
	v, found, _ := db.Get(bg, []byte("mutable-key"))
	if !found || string(v) != "mutable-val" {
		t.Fatalf("input aliasing leaked into the store: %q %v", v, found)
	}
}

func TestPublicAPIClonesOutputs(t *testing.T) {
	db := openPublic(t)
	db.Put(bg, []byte("k"), []byte("value"))
	v, _, _ := db.Get(bg, []byte("k"))
	v[0] = 'X'
	v2, _, _ := db.Get(bg, []byte("k"))
	if !bytes.Equal(v2, []byte("value")) {
		t.Fatal("mutating a returned value corrupted the store")
	}
}

func TestPublicAPIScan(t *testing.T) {
	db := openPublic(t, flodb.WithMemory(1<<20))
	for i := 0; i < 100; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), []byte(fmt.Sprint(i)))
	}
	pairs, err := db.Scan(bg, keys.EncodeUint64(20), keys.EncodeUint64(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("scan returned %d", len(pairs))
	}
	for i, p := range pairs {
		if keys.DecodeUint64(p.Key) != uint64(20+i) {
			t.Fatalf("pair %d key %x", i, p.Key)
		}
	}
}

func TestPublicAPIOptions(t *testing.T) {
	db := openPublic(t,
		flodb.WithMemory(2<<20),
		flodb.WithMembufferFraction(0.5),
		flodb.WithPartitionBits(4),
		flodb.WithDrainThreads(1),
		flodb.WithRestartThreshold(5),
		flodb.WithoutWAL(),
	)
	for i := 0; i < 1000; i++ {
		if err := db.Put(bg, keys.EncodeUint64(uint64(i)*0x9e3779b97f4a7c15), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Puts != 1000 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := flodb.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), keys.EncodeUint64(uint64(i)))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := flodb.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 500; i += 37 {
		v, found, err := db2.Get(bg, keys.EncodeUint64(uint64(i)))
		if err != nil || !found || keys.DecodeUint64(v) != uint64(i) {
			t.Fatalf("key %d after reopen: %v %v %v", i, v, found, err)
		}
	}
}

func TestPublicAPIConcurrent(t *testing.T) {
	db := openPublic(t, flodb.WithMemory(1<<20), flodb.WithoutWAL())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := keys.EncodeUint64(uint64(w*2000+i) * 0x9e3779b97f4a7c15)
				if err := db.Put(bg, k, keys.EncodeUint64(uint64(i))); err != nil {
					panic(err)
				}
				if _, _, err := db.Get(bg, k); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	pairs, err := db.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 8000 {
		t.Fatalf("scan found %d of 8000 keys", len(pairs))
	}
}

func TestErrClosedExported(t *testing.T) {
	db, err := flodb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := db.Put(bg, []byte("k"), []byte("v")); !errors.Is(err, flodb.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestFunctionalOptions(t *testing.T) {
	db, err := flodb.Open(t.TempDir(),
		flodb.WithMemory(2<<20),
		flodb.WithMembufferFraction(0.5),
		flodb.WithPartitionBits(4),
		flodb.WithDrainThreads(1),
		flodb.WithRestartThreshold(5),
		flodb.WithoutWAL(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1000; i++ {
		if err := db.Put(bg, keys.EncodeUint64(uint64(i)*0x9e3779b97f4a7c15), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Stats(); st.Puts != 1000 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLegacyOptionsShim(t *testing.T) {
	// The deprecated *Options struct is itself an Option; nil still works.
	db, err := flodb.Open(t.TempDir(), flodb.WithMemory(1<<20), flodb.WithoutWAL())
	if err != nil {
		t.Fatal(err)
	}
	db.Put(bg, []byte("k"), []byte("v"))
	if v, ok, _ := db.Get(bg, []byte("k")); !ok || string(v) != "v" {
		t.Fatalf("legacy options store broken: %q %v", v, ok)
	}
	db.Close()

	db2, err := flodb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db2.Close()
}

func TestPublicIterator(t *testing.T) {
	db := openPublic(t, flodb.WithMemory(1<<20))
	for i := 0; i < 100; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), []byte(fmt.Sprint(i)))
	}
	it, err := db.NewIterator(bg, keys.EncodeUint64(20), keys.EncodeUint64(30))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if keys.DecodeUint64(it.Key()) != uint64(20+i) || string(it.Value()) != fmt.Sprint(20+i) {
			t.Fatalf("pair %d: %x=%q", i, it.Key(), it.Value())
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != 10 {
		t.Fatalf("iterated %d pairs", i)
	}
	if !it.Seek(keys.EncodeUint64(25)) || keys.DecodeUint64(it.Key()) != 25 {
		t.Fatalf("Seek(25) landed on %x", it.Key())
	}
}

func TestPublicWriteBatch(t *testing.T) {
	db := openPublic(t)
	db.Put(bg, []byte("doomed"), []byte("x"))
	b := flodb.NewWriteBatch()
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("doomed"))
	if err := db.Apply(bg, b); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := db.Get(bg, []byte("a")); !ok || string(v) != "1" {
		t.Fatalf("a = %q %v", v, ok)
	}
	if v, ok, _ := db.Get(bg, []byte("b")); !ok || string(v) != "2" {
		t.Fatalf("b = %q %v", v, ok)
	}
	if _, ok, _ := db.Get(bg, []byte("doomed")); ok {
		t.Fatal("batched delete ineffective")
	}
	st := db.Stats()
	if st.Batches != 1 || st.BatchOps != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPublicStoreSatisfiesContract(t *testing.T) {
	// Compile-time in flodb.go; here: the closed-store behavior of the
	// extended surface.
	db, err := flodb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := db.NewIterator(bg, nil, nil); !errors.Is(err, flodb.ErrClosed) {
		t.Fatalf("NewIterator on closed store: %v", err)
	}
	b := flodb.NewWriteBatch()
	b.Put([]byte("k"), []byte("v"))
	if err := db.Apply(bg, b); !errors.Is(err, flodb.ErrClosed) {
		t.Fatalf("Apply on closed store: %v", err)
	}
}

// TestPublicAPISharded drives the full public surface of a store opened
// with WithShards: routed writes, globally ordered merged scans,
// snapshots spanning shards, per-shard stats, and the fixed-at-creation
// shard count.
func TestPublicAPISharded(t *testing.T) {
	dir := t.TempDir()
	db, err := flodb.Open(dir, flodb.WithShards(4), flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	const n = 512
	for i := uint64(0); i < n; i++ {
		// Spread keys over the 64-bit space so every shard participates.
		k := keys.EncodeUint64(i * 0x9e3779b97f4a7c15)
		if err := db.Put(bg, k, keys.EncodeUint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := db.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != n {
		t.Fatalf("scan returned %d pairs, want %d", len(pairs), n)
	}
	for i := 1; i < len(pairs); i++ {
		if bytes.Compare(pairs[i-1].Key, pairs[i].Key) >= 0 {
			t.Fatalf("merged scan out of order at %d", i)
		}
	}

	per := db.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d rows, want 4", len(per))
	}
	var putSum uint64
	for i, s := range per {
		if s.Puts == 0 {
			t.Fatalf("shard %d saw no puts under spread keys", i)
		}
		putSum += s.Puts
	}
	if putSum != n {
		t.Fatalf("per-shard puts sum to %d, want %d", putSum, n)
	}

	snap, err := db.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	before, err := snap.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		k := keys.EncodeUint64(i * 0x9e3779b97f4a7c15)
		if err := db.Put(bg, k, []byte("after")); err != nil {
			t.Fatal(err)
		}
	}
	after, err := snap.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("snapshot scan drifted: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if !bytes.Equal(after[i].Value, before[i].Value) {
			t.Fatalf("snapshot leaked post-snapshot write at %d", i)
		}
	}
	snap.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The shard count is a property of the data: reopening with a
	// different one must fail, reopening with the same one must see
	// everything.
	if _, err := flodb.Open(dir, flodb.WithShards(2)); err == nil {
		t.Fatal("reopen with mismatched shard count accepted")
	}
	r, err := flodb.Open(dir, flodb.WithShards(4), flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok, err := r.Get(bg, keys.EncodeUint64(0)); err != nil || !ok || string(v) != "after" {
		t.Fatalf("reopened sharded Get = %q %v %v", v, ok, err)
	}
}

// TestUnshardedStoreHasNoShardStats pins the nil contract for the
// default engine.
func TestUnshardedStoreHasNoShardStats(t *testing.T) {
	db := openPublic(t)
	if db.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", db.Shards())
	}
	if per := db.ShardStats(); per != nil {
		t.Fatalf("ShardStats on unsharded store = %v, want nil", per)
	}
}

// TestShardedReopenWithoutOption pins the adoption contract: plain
// Open(dir) on a sharded root must adopt the recorded layout rather than
// shadow it with a fresh unsharded engine, and an explicit WithShards(1)
// on that root must be rejected as a mismatch.
func TestShardedReopenWithoutOption(t *testing.T) {
	dir := t.TempDir()
	db, err := flodb.Open(dir, flodb.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(bg, []byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := flodb.Open(dir) // no options: adopt the SHARDS manifest
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Shards(); got != 4 {
		t.Fatalf("adopted Shards() = %d, want 4", got)
	}
	if v, ok, err := r.Get(bg, []byte("hello")); err != nil || !ok || string(v) != "world" {
		t.Fatalf("data shadowed on optionless reopen: %q %v %v", v, ok, err)
	}

	if _, err := flodb.Open(dir, flodb.WithShards(1)); err == nil {
		t.Fatal("WithShards(1) on a 4-shard root accepted")
	}
}
