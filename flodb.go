// Package flodb is a persistent key-value store with a two-level memory
// component, implementing the design of "FloDB: Unlocking Memory in
// Persistent Key-Value Stores" (Balmau, Guerraoui, Trigonakis, Zablotchi —
// EuroSys 2017).
//
// A FloDB store layers a small concurrent hash table (the Membuffer) above
// a large concurrent skiplist (the Memtable) above a leveled on-disk LSM
// tree. Updates complete in the hash table in constant time regardless of
// how much memory the store is given; background threads continuously
// drain them into the skiplist using batched multi-inserts; the skiplist
// flushes to disk without a sorting step. Reads check the levels in
// freshness order. Scans are serializable (master scans linearizable) and
// run concurrently with updates.
//
// Every operation takes a context.Context: cancellation and deadlines are
// honored at every wait point (chunked scan refills, drain waits, write
// backpressure), and context errors surface via errors.Is.
//
// Quick start:
//
//	db, err := flodb.Open("/tmp/mydb", flodb.WithMemory(64<<20))
//	if err != nil { ... }
//	defer db.Close()
//
//	ctx := context.Background()
//	db.Put(ctx, []byte("k"), []byte("v"))
//	v, found, err := db.Get(ctx, []byte("k"))
//
// Ranges stream through a cursor, so a scan larger than memory never
// materializes:
//
//	it, err := db.NewIterator(ctx, []byte("a"), []byte("z"))
//	if err != nil { ... }
//	defer it.Close()
//	for ok := it.First(); ok; ok = it.Next() {
//		process(it.Key(), it.Value())
//	}
//	if err := it.Err(); err != nil { ... }
//
// Mutations group into atomic batches — one WAL record, one fsync,
// all-or-nothing recovery:
//
//	b := flodb.NewWriteBatch()
//	b.Put([]byte("k1"), []byte("v1"))
//	b.Delete([]byte("k2"))
//	if err := db.Apply(ctx, b); err != nil { ... }
//
// Durability is a per-operation choice. Writes default to Buffered
// (logged, no fsync — the store's open-time default, tunable with
// WithDurability); any single write can demand more or less, and Sync is
// a store-wide barrier that promotes everything already acknowledged:
//
//	db.Put(ctx, k, v)                  // buffered: logged, no fsync
//	db.Put(ctx, k, v, flodb.WithSync()) // group-committed fsync before return
//	db.Put(ctx, k, v, flodb.WithDurability(flodb.DurabilityNone)) // not logged
//	db.Sync(ctx)                       // barrier: everything acked is now durable
//
// Concurrent Sync-class writers share disk barriers through the WAL's
// group-commit queue: one fsync acknowledges many writers, so turning
// durability on does not re-serialize the memory-speed write path behind
// the log.
//
// Named read views give multi-request consistency and online backup:
//
//	snap, err := db.Snapshot(ctx)  // repeatable-read handle
//	if err != nil { ... }
//	defer snap.Close()
//	v1, _, _ := snap.Get(ctx, []byte("k"))  // repeats identically
//
//	err = db.Checkpoint(ctx, "/backups/mydb-2026-07-25")  // openable copy
//
// Past a single memory component, the store range-partitions across N
// independent engines — per-shard WALs, drain pools, flush pipelines and
// group-commit queues — behind the same API:
//
//	db, err := flodb.Open(dir, flodb.WithShards(4))
//
// Scans and iterators merge the shards in global key order, Snapshot
// pins one consistent cut across all of them, and Checkpoint fans out
// into per-shard copies. See the README's sharding section for the
// cross-shard atomicity caveats.
//
// The memory split itself can self-tune: WithAdaptiveMemory lets a
// workload sensor resize the Membuffer↔Memtable byte split as workload
// phases shift (§4.4) — large Membuffer under write bursts, small under
// scan-heavy phases — with the live split, resize count and sensor
// rates reported through Stats:
//
//	db, err := flodb.Open(dir, flodb.WithAdaptiveMemory())
package flodb

import (
	"context"

	"flodb/internal/core"
	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/obs"
	"flodb/internal/shard"
)

// Pair is a key-value pair returned by Scan.
type Pair = kv.Pair

// Stats is a snapshot of store operation counters.
type Stats = kv.Stats

// View is a read-only view of the store: Get, Scan, NewIterator, Close.
// A *DB is itself the live View; Snapshot returns a View pinned at a
// point in time. See the kv package for the full contract.
type View = kv.View

// Durability classifies how durable a write is when its call returns:
// None (not logged; lost on crash), Buffered (staged in the log, no
// flush/fsync; a crash may lose a recent suffix of acked writes, never a
// middle slice), Sync (group-committed fsync before the call returns).
// The store's default is set at Open with WithDurability; each Put,
// Delete and Apply may override it.
type Durability = kv.Durability

// The durability classes. DurabilityDefault defers to the store default.
const (
	DurabilityDefault  = kv.DurabilityDefault
	DurabilityNone     = kv.DurabilityNone
	DurabilityBuffered = kv.DurabilityBuffered
	DurabilitySync     = kv.DurabilitySync
)

// WriteOption tunes a single Put, Delete or Apply call; WithSync and
// WithDurability produce them.
type WriteOption = kv.WriteOption

// The error taxonomy. Implementations wrap these, so always test with
// errors.Is.
var (
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = kv.ErrClosed
	// ErrSnapshotReleased is returned by reads through a snapshot whose
	// Close has run.
	ErrSnapshotReleased = kv.ErrSnapshotReleased
	// ErrNotSupported is returned when the store's configuration cannot
	// provide an operation.
	ErrNotSupported = kv.ErrNotSupported
)

// DB is a FloDB store — a single engine by default, or a
// range-partitioned set of engines behind the same surface when opened
// with WithShards. All methods are safe for concurrent use; Close must
// not race with other operations.
type DB struct {
	inner kv.Store
}

// Open opens (creating if needed) a store in dir, tuned by opts.
//
//	db, err := flodb.Open(dir,
//		flodb.WithMemory(128<<20),
//		flodb.WithDrainThreads(4),
//		flodb.WithDurability(flodb.DurabilitySync),
//	)
//
// With no options the store uses the paper's defaults scaled for a
// development machine. Out-of-range option values (a non-positive memory
// budget, a Membuffer fraction outside (0,1), ...) are rejected with a
// descriptive error.
func Open(dir string, opts ...Option) (*DB, error) {
	var o options
	for _, opt := range opts {
		if opt != nil {
			opt.apply(&o)
		}
	}
	if o.err != nil {
		return nil, o.err
	}
	cfg := core.Config{
		Dir:                 dir,
		MemoryBytes:         o.memoryBytes,
		MembufferFraction:   o.membufferFraction,
		PartitionBits:       o.partitionBits,
		DrainThreads:        o.drainThreads,
		RestartThreshold:    o.restartThreshold,
		DisableWAL:          o.disableWAL,
		WALWriteThrough:     o.walWriteThrough,
		Durability:          o.durability,
		AdaptiveMemory:      o.adaptive,
		AdaptiveMinFraction: o.adaptiveMin,
		AdaptiveMaxFraction: o.adaptiveMax,
		AdaptiveWindow:      o.adaptiveWindow,
		DisableTelemetry:    o.disableTelemetry,
	}
	cfg.Storage.BlockCacheBytes = o.blockCacheBytes
	cfg.Storage.TableCacheCapacity = o.tableCacheCap
	// A sharded root must never be shadowed by a fresh unsharded engine:
	// detect the SHARDS manifest and adopt its layout when the caller
	// didn't pass a shard policy. An explicit mismatching Static count
	// (including Static(1) on a sharded root) is rejected by shard.Open.
	detected, err := shard.DetectShards(dir)
	if err != nil {
		return nil, err
	}
	p := o.policy
	n := p.shards
	if n == 0 && !p.dynamic {
		n = detected
	}
	if n > 1 || detected > 0 || p.dynamic {
		// Sharded engine: cfg becomes the per-shard template (shard.Open
		// assigns the subdirectories and splits the memory budget).
		scfg := shard.Config{Dir: dir, Shards: n, Core: cfg}
		if p.hashed {
			scfg.Splitter = shard.HashSplitter{}
		}
		if p.dynamic {
			// Fresh stores start at MinShards (Shards stays 0 so a reopen
			// adopts whatever layout the last run's splits left behind).
			scfg.Shards = 0
			scfg.Dynamic = shard.Dynamic{
				Enabled:   true,
				MinShards: p.minShards,
				MaxShards: p.maxShards,
			}
		}
		inner, err := shard.Open(scfg)
		if err != nil {
			return nil, err
		}
		return &DB{inner: inner}, nil
	}
	inner, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Put inserts or overwrites key with value. The slices are copied; the
// caller may reuse them. By default the write commits under the store's
// durability class; WithSync / WithDurability override it for this call.
func (db *DB) Put(ctx context.Context, key, value []byte, opts ...WriteOption) error {
	return db.inner.Put(ctx, key, value, opts...)
}

// Delete removes key. Deleting an absent key is not an error. Durability
// options apply as in Put.
func (db *DB) Delete(ctx context.Context, key []byte, opts ...WriteOption) error {
	return db.inner.Delete(ctx, key, opts...)
}

// Sync is the durability barrier: it blocks until every write
// acknowledged before the call — on any goroutine — is crash-durable,
// promoting the whole acked-but-buffered window with one group-committed
// disk barrier per live WAL segment. A batch-load pattern: stream
// thousands of Buffered writes at memory speed, then Sync once.
//
// Stats reports the boundary: writes up to DurableSeq are durable,
// (DurableSeq, AckedSeq] is the window Sync closes.
func (db *DB) Sync(ctx context.Context) error {
	return db.inner.Sync(ctx)
}

// Get returns the current value of key. found is false if the key is
// absent or deleted. The returned slice is a copy.
func (db *DB) Get(ctx context.Context, key []byte) (value []byte, found bool, err error) {
	v, ok, err := db.inner.Get(ctx, key)
	if err != nil || !ok {
		return nil, false, err
	}
	return keys.Clone(v), true, nil
}

// Scan returns all pairs with low <= key < high in key order. Nil bounds
// are open. The returned view is a consistent snapshot: point-in-time
// semantics as defined in §2.1 of the paper. The whole range is
// materialized; prefer NewIterator for large or unbounded ranges.
func (db *DB) Scan(ctx context.Context, low, high []byte) ([]Pair, error) {
	return db.inner.Scan(ctx, low, high)
}

// Snapshot returns a repeatable-read View pinned at the current state:
// its Gets, Scans and iterators observe exactly the data committed before
// the call, however many writes land afterwards, until the handle is
// Closed.
//
// Taking a snapshot is O(1) in the size of the memory component: the
// call seals the Membuffer (the same generation switch a master scan
// performs — the hash table's entries are unsequenced, so they must
// reach the skiplist before a sequence bound can mean anything), draws
// a sequence bound, and pins the live skiplist plus the current disk
// version at that bound. No memtable flush happens. While the handle is
// open, in-place skiplist overwrites keep a short per-key version chain
// so the snapshot's reads resolve to the newest version at or below its
// bound; the chains are pruned back to single versions as snapshots
// close. The handle also pins sstables until Close, so holding
// snapshots delays space reclamation and retains superseded values in
// memory — it never blocks writers after the seal returns.
//
// On a sharded store the per-shard bounds are pinned under a brief
// cross-shard write barrier, so the handle is one globally consistent
// cut.
func (db *DB) Snapshot(ctx context.Context) (View, error) {
	return db.inner.Snapshot(ctx)
}

// Checkpoint writes an openable copy of the store into dir (which must
// not exist or be empty) while the store stays online. Immutable sstables
// are hard-linked (copied across filesystems), the manifest is rewritten,
// and the WAL tail is copied, so flodb.Open(dir) recovers a
// prefix-consistent state: every update it contains completed here before
// some point during the call, with no holes in commit order. Use it to
// seed replicas and take online backups.
func (db *DB) Checkpoint(ctx context.Context, dir string) error {
	return db.inner.Checkpoint(ctx, dir)
}

// Close flushes the memory component to disk and releases all resources.
// It must not run concurrently with other operations.
func (db *DB) Close() error { return db.inner.Close() }

// Stats returns a snapshot of operation counters. On a sharded store the
// counters aggregate across shards (ShardStats has the breakdown).
func (db *DB) Stats() Stats { return db.inner.(kv.StatsProvider).Stats() }

// Shards returns the store's LIVE shard count: 1 for the default
// unsharded engine. Under an Adaptive policy the count can change
// between calls; ShardTopology returns the epoch that versions it.
func (db *DB) Shards() int {
	if s, ok := db.inner.(*shard.Store); ok {
		return s.Count()
	}
	return 1
}

// Topology is the store's shard layout, versioned by Epoch: Shards
// engines, routed by Routing ("range" or "hash"), with Boundaries
// holding the Shards-1 ascending range cut keys (nil under hash
// routing). The epoch bumps on every Adaptive split or merge, so a
// caller that cached routing decisions compares epochs to detect a
// layout change.
type Topology = shard.Topology

// ErrDynamicHashRouting is returned by Open when an Adaptive policy
// meets hash routing — a hash-routed shard spans the whole keyspace,
// leaving no boundary to split.
var ErrDynamicHashRouting = shard.ErrDynamicHashRouting

// FutureManifestError is returned by Open when the store's SHARDS
// manifest was written by a newer binary than this one. Detect it with
// errors.As to tell an upgrade problem from corruption.
type FutureManifestError = shard.FutureManifestError

// ShardTopology returns a snapshot of the live shard layout. An
// unsharded store reports the trivial topology: one shard, epoch 1.
// The boundary keys are copies; the caller may retain them.
func (db *DB) ShardTopology() Topology {
	if s, ok := db.inner.(*shard.Store); ok {
		return s.Topology()
	}
	return Topology{Epoch: 1, Shards: 1, Routing: "range"}
}

// ShardStats returns each shard's own counters, indexed by shard, when
// the store was opened with WithShards(n > 1) — the per-shard breakdown
// behind Stats, and the imbalance signal under skewed workloads. It
// returns nil for an unsharded store.
func (db *DB) ShardStats() []Stats {
	if s, ok := db.inner.(*shard.Store); ok {
		return s.PerShard()
	}
	return nil
}

// telemetryProvider is implemented by both engines (core.DB directly,
// shard.Store by merging its shards).
type telemetryProvider interface {
	TelemetrySnapshot() obs.Snapshot
	TelemetryEvents(n int) []obs.Event
}

// TelemetrySnapshot freezes the store's metrics registry: every Stats
// counter under its canonical flodb_* name, the WAL/cache/storage
// views, and — unless telemetry was disabled with WithTelemetry(false)
// — per-op latency histograms and event counts. On a sharded store the
// shards merge: counters sum, histograms merge bucket-wise. The result
// renders to Prometheus text with WritePrometheus; flodbd serves it at
// /metrics.
func (db *DB) TelemetrySnapshot() obs.Snapshot {
	return db.inner.(telemetryProvider).TelemetrySnapshot()
}

// TelemetryEvents returns up to n recent structured lifecycle events
// (flushes, compactions, generation seals, WAL rotations and stalls,
// snapshot pins, resize epochs; n <= 0 returns everything retained),
// oldest first. On a sharded store the shards' timelines interleave by
// timestamp. It returns nil when telemetry is disabled.
func (db *DB) TelemetryEvents(n int) []obs.Event {
	return db.inner.(telemetryProvider).TelemetryEvents(n)
}

var (
	_ kv.Store         = (*DB)(nil)
	_ kv.StatsProvider = (*DB)(nil)
)
