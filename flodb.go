// Package flodb is a persistent key-value store with a two-level memory
// component, implementing the design of "FloDB: Unlocking Memory in
// Persistent Key-Value Stores" (Balmau, Guerraoui, Trigonakis, Zablotchi —
// EuroSys 2017).
//
// A FloDB store layers a small concurrent hash table (the Membuffer) above
// a large concurrent skiplist (the Memtable) above a leveled on-disk LSM
// tree. Updates complete in the hash table in constant time regardless of
// how much memory the store is given; background threads continuously
// drain them into the skiplist using batched multi-inserts; the skiplist
// flushes to disk without a sorting step. Reads check the levels in
// freshness order. Scans are serializable (master scans linearizable) and
// run concurrently with updates.
//
// Quick start:
//
//	db, err := flodb.Open("/tmp/mydb", flodb.WithMemory(64<<20))
//	if err != nil { ... }
//	defer db.Close()
//
//	db.Put([]byte("k"), []byte("v"))
//	v, found, err := db.Get([]byte("k"))
//
// Ranges stream through a cursor, so a scan larger than memory never
// materializes:
//
//	it, err := db.NewIterator([]byte("a"), []byte("z"))
//	if err != nil { ... }
//	defer it.Close()
//	for ok := it.First(); ok; ok = it.Next() {
//		process(it.Key(), it.Value())
//	}
//	if err := it.Err(); err != nil { ... }
//
// Mutations group into atomic batches — one WAL record, one fsync,
// all-or-nothing recovery:
//
//	b := flodb.NewWriteBatch()
//	b.Put([]byte("k1"), []byte("v1"))
//	b.Delete([]byte("k2"))
//	if err := db.Apply(b); err != nil { ... }
//
// Scan remains as a convenience that materializes a full range snapshot:
//
//	pairs, err := db.Scan([]byte("a"), []byte("z"))
package flodb

import (
	"flodb/internal/core"
	"flodb/internal/keys"
	"flodb/internal/kv"
)

// Pair is a key-value pair returned by Scan.
type Pair = kv.Pair

// Stats is a snapshot of store operation counters.
type Stats = kv.Stats

// ErrClosed is returned by operations on a closed store.
var ErrClosed = core.ErrClosed

// DB is a FloDB store. All methods are safe for concurrent use; Close must
// not race with other operations.
type DB struct {
	inner *core.DB
}

// Open opens (creating if needed) a store in dir, tuned by opts.
//
//	db, err := flodb.Open(dir,
//		flodb.WithMemory(128<<20),
//		flodb.WithDrainThreads(4),
//		flodb.WithSyncWAL(),
//	)
//
// With no options the store uses the paper's defaults scaled for a
// development machine. A legacy *Options struct (including nil) is itself
// an Option and may be passed directly.
func Open(dir string, opts ...Option) (*DB, error) {
	var o Options
	for _, opt := range opts {
		if opt != nil {
			opt.apply(&o)
		}
	}
	inner, err := core.Open(core.Config{
		Dir:               dir,
		MemoryBytes:       o.MemoryBytes,
		MembufferFraction: o.MembufferFraction,
		PartitionBits:     o.PartitionBits,
		DrainThreads:      o.DrainThreads,
		RestartThreshold:  o.RestartThreshold,
		DisableWAL:        o.DisableWAL,
		SyncWAL:           o.SyncWAL,
	})
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Put inserts or overwrites key with value. The slices are copied; the
// caller may reuse them.
func (db *DB) Put(key, value []byte) error {
	return db.inner.Put(key, value)
}

// Delete removes key. Deleting an absent key is not an error.
func (db *DB) Delete(key []byte) error {
	return db.inner.Delete(key)
}

// Get returns the current value of key. found is false if the key is
// absent or deleted. The returned slice is a copy.
func (db *DB) Get(key []byte) (value []byte, found bool, err error) {
	v, ok, err := db.inner.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	return keys.Clone(v), true, nil
}

// Scan returns all pairs with low <= key < high in key order. Nil bounds
// are open. The returned view is a consistent snapshot: point-in-time
// semantics as defined in §2.1 of the paper. The whole range is
// materialized; prefer NewIterator for large or unbounded ranges.
func (db *DB) Scan(low, high []byte) ([]Pair, error) {
	return db.inner.Scan(low, high)
}

// Close flushes the memory component to disk and releases all resources.
// It must not run concurrently with other operations.
func (db *DB) Close() error { return db.inner.Close() }

// Stats returns a snapshot of operation counters.
func (db *DB) Stats() Stats { return db.inner.Stats() }

var (
	_ kv.Store         = (*DB)(nil)
	_ kv.StatsProvider = (*DB)(nil)
)
