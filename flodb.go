// Package flodb is a persistent key-value store with a two-level memory
// component, implementing the design of "FloDB: Unlocking Memory in
// Persistent Key-Value Stores" (Balmau, Guerraoui, Trigonakis, Zablotchi —
// EuroSys 2017).
//
// A FloDB store layers a small concurrent hash table (the Membuffer) above
// a large concurrent skiplist (the Memtable) above a leveled on-disk LSM
// tree. Updates complete in the hash table in constant time regardless of
// how much memory the store is given; background threads continuously
// drain them into the skiplist using batched multi-inserts; the skiplist
// flushes to disk without a sorting step. Reads check the levels in
// freshness order. Scans are serializable (master scans linearizable) and
// run concurrently with updates.
//
// Quick start:
//
//	db, err := flodb.Open("/tmp/mydb", nil)
//	if err != nil { ... }
//	defer db.Close()
//
//	db.Put([]byte("k"), []byte("v"))
//	v, found, err := db.Get([]byte("k"))
//	pairs, err := db.Scan([]byte("a"), []byte("z"))
package flodb

import (
	"flodb/internal/core"
	"flodb/internal/keys"
	"flodb/internal/kv"
)

// Pair is a key-value pair returned by Scan.
type Pair = kv.Pair

// Stats is a snapshot of store operation counters.
type Stats = kv.Stats

// ErrClosed is returned by operations on a closed store.
var ErrClosed = core.ErrClosed

// Options tune a store. The zero value (or nil) gives the defaults the
// paper's evaluation uses, scaled for a development machine.
type Options struct {
	// MemoryBytes is the total memory-component budget, split 1/4
	// Membuffer : 3/4 Memtable as in the paper (§5.1). Default 64 MiB.
	MemoryBytes int64
	// MembufferFraction overrides the Membuffer's share (0 < f < 1).
	MembufferFraction float64
	// PartitionBits is ℓ: the Membuffer has 2^ℓ partitions selected by
	// the most significant key bits (§4.3). Default 6.
	PartitionBits uint
	// DrainThreads is the number of background draining threads. Default 2.
	DrainThreads int
	// RestartThreshold bounds scan restarts before the fallback scan
	// blocks writers. Default 3.
	RestartThreshold int
	// DisableWAL turns off commit logging: faster writes, no crash
	// durability for the memory component.
	DisableWAL bool
	// SyncWAL fsyncs the commit log on every update.
	SyncWAL bool
}

// DB is a FloDB store. All methods are safe for concurrent use; Close must
// not race with other operations.
type DB struct {
	inner *core.DB
}

// Open opens (creating if needed) a store in dir. opts may be nil.
func Open(dir string, opts *Options) (*DB, error) {
	cfg := core.Config{Dir: dir}
	if opts != nil {
		cfg.MemoryBytes = opts.MemoryBytes
		cfg.MembufferFraction = opts.MembufferFraction
		cfg.PartitionBits = opts.PartitionBits
		cfg.DrainThreads = opts.DrainThreads
		cfg.RestartThreshold = opts.RestartThreshold
		cfg.DisableWAL = opts.DisableWAL
		cfg.SyncWAL = opts.SyncWAL
	}
	inner, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Put inserts or overwrites key with value. The slices are copied; the
// caller may reuse them.
func (db *DB) Put(key, value []byte) error {
	return db.inner.Put(keys.Clone(key), keys.Clone(value))
}

// Delete removes key. Deleting an absent key is not an error.
func (db *DB) Delete(key []byte) error {
	return db.inner.Delete(keys.Clone(key))
}

// Get returns the current value of key. found is false if the key is
// absent or deleted. The returned slice is a copy.
func (db *DB) Get(key []byte) (value []byte, found bool, err error) {
	v, ok, err := db.inner.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	return keys.Clone(v), true, nil
}

// Scan returns all pairs with low <= key < high in key order. Nil bounds
// are open. The returned view is a consistent snapshot: point-in-time
// semantics as defined in §2.1 of the paper.
func (db *DB) Scan(low, high []byte) ([]Pair, error) {
	return db.inner.Scan(low, high)
}

// Close flushes the memory component to disk and releases all resources.
// It must not run concurrently with other operations.
func (db *DB) Close() error { return db.inner.Close() }

// Stats returns a snapshot of operation counters.
func (db *DB) Stats() Stats { return db.inner.Stats() }

var (
	_ kv.Store         = (*DB)(nil)
	_ kv.StatsProvider = (*DB)(nil)
)
